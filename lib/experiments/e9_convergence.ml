(** E9 — Definition 17 / Lemma 3 / Corollary 4: quiescent convergence at
    scale. Random workloads on every store under every network policy;
    after the quiescence driver finishes, all replicas must answer every
    read identically and the witness must show full visibility. Also
    reports traffic statistics. *)

open Haec

let name = "E9"

let title = "E9: quiescent convergence across stores and network policies"

module Mvr = Harness.Run (Store.Mvr_store)
module Causal = Harness.Run (Store.Causal_mvr_store)
module Orset = Harness.Run (Store.Orset_store)
module Lww = Harness.Run (Store.Lww_store)
module Gossip = Harness.Run (Store.Gossip_relay_store)
module Cops = Harness.Run (Store.Cops_store)

let run ppf =
  let n = 5 and objects = 4 and ops = 200 in
  let runs =
    [
      ("mvr-eager", fun seed policy ->
        Mvr.random ~seed ~n ~objects ~ops ~policy Sim.Workload.register_mix ());
      ("mvr-causal", fun seed policy ->
        Causal.random ~seed ~n ~objects ~ops ~policy Sim.Workload.register_mix ());
      ("orset", fun seed policy ->
        Orset.random
          ~spec_of:(fun _ -> Spec.Spec.orset)
          ~seed ~n ~objects ~ops ~policy Sim.Workload.orset_mix ());
      ("lww-register", fun seed policy ->
        Lww.random
          ~spec_of:(fun _ -> Spec.Spec.rw_register)
          ~seed ~n ~objects ~ops ~policy Sim.Workload.register_mix ());
      ("gossip-relay", fun seed policy ->
        Gossip.random ~seed ~n ~objects ~ops ~policy Sim.Workload.register_mix ());
      ("mvr-cops-deps", fun seed policy ->
        Cops.random ~seed ~n ~objects ~ops ~policy Sim.Workload.register_mix ());
    ]
  in
  (* one task per store x policy cell, fanned out over domains; each cell's
     seed is fixed by its position, so the table is identical at any -j *)
  let cells =
    List.concat
      (List.mapi
         (fun i (store, runner) ->
           List.mapi
             (fun j (pname, policy) ->
               (store, pname, fun () -> runner ((100 * i) + j) policy))
             (Harness.policies ()))
         runs)
  in
  let stats = Harness.sweep (List.map (fun (_, _, task) -> task) cells) in
  let rows =
    List.map2
      (fun (store, pname, _) s ->
        (* Lemma 3 / Corollary 4: well-formed, and post-quiescence every
           update is visible and reads agree at all replicas (the
           harness folds read agreement into the eventual check). *)
        let converged =
          Harness.ok s.Harness.report.Sim.Checks.well_formed
          && Harness.ok s.Harness.report.Sim.Checks.eventual
        in
        [
          store;
          pname;
          string_of_int s.Harness.ops;
          string_of_int s.Harness.messages;
          string_of_int (s.Harness.total_bits / 8);
          Tables.f1 s.Harness.quiesce_time;
          Tables.f1 s.Harness.lag_p50;
          Tables.f1 s.Harness.lag_p99;
          Tables.yes_no converged;
        ])
      cells stats
  in
  Tables.print ppf ~title
    ~header:
      [
        "store"; "network"; "ops"; "messages"; "bytes"; "drain t"; "lag p50";
        "lag p99"; "converged";
      ]
    rows;
  Tables.note ppf
    "converged = the execution is well-formed and, post quiescence, every";
  Tables.note ppf
    "replica answers every object read identically (Lemma 3 / Corollary 4).";
  Tables.note ppf
    "lag p50/p99 = visibility staleness in simulated time: per update and";
  Tables.note ppf
    "per other replica, how long until an operation there first witnessed";
  Tables.note ppf
    "it (Definition 17's eventual visibility, measured).";
  Tables.note ppf
    "gossip-relay converges too, at a visibly higher message cost (relays)."
