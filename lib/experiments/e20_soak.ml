(** E20 — replication soak: throughput scaling of the causal delivery hot
    path, in replicas (n) and operations (k).

    Two instruments, both reading the delivery layer's own work counters
    ({!Haec_store.Store_intf.delivery_stats}):

    - a {b buffering stress}: one writer emits k single-update messages and
      a reader receives them in reverse order, so k-1 records buffer and a
      single cascade drains them all. This isolates the delivery buffer:
      the frozen list-scan baseline ({!Haec_store.Causal_naive_store})
      performs Theta(k^2) deliverability scans, the dependency-indexed
      buffer ({!Haec_store.Causal_mvr_store}) Theta(k).
    - a {b replication soak}: n replicas running a random register workload
      over a reordering network until quiescence, reporting ops/s,
      bytes/op and scans/op — the macro numbers the BENCH_* perf
      trajectory tracks across commits.

    Wall-clock columns (ops/s, seconds) vary by machine; the scan counts
    are deterministic for a given seed. *)

open Haec

let name = "E20"

let title = "E20: replication soak — delivery-buffer scaling and throughput"

type soak = {
  label : string;
  n : int;
  ops : int;
  messages : int;
  total_bytes : int;
  deliveries : int;
  scans : int;
  max_buffer : int;
  elapsed : float;  (** CPU seconds *)
}

type stress = {
  s_label : string;
  k : int;
  s_scans : int;
  s_max_buffer : int;
  s_elapsed : float;
}

(* ---------- buffering stress (store-level, no simulator) ---------- *)

module Stress (S : Store.Store_intf.S) = struct
  let run ~label ~reset ~stats ~k =
    let msgs = Array.make k "" in
    let writer = ref (S.init ~n:2 ~me:0) in
    for i = 0 to k - 1 do
      let st, rval, _w = S.do_op !writer ~obj:0 (Model.Op.Write (Model.Value.Int i)) in
      assert (rval = Model.Op.Ok);
      let st, payload = S.send st in
      writer := st;
      msgs.(i) <- payload
    done;
    reset ();
    let t0 = Sys.time () in
    let reader = ref (S.init ~n:2 ~me:1) in
    for i = k - 1 downto 0 do
      reader := S.receive !reader ~sender:0 msgs.(i)
    done;
    let s_elapsed = Sys.time () -. t0 in
    let final, r, _w = S.do_op !reader ~obj:0 Model.Op.Read in
    ignore final;
    (* every write was delivered: the reader sees the last value *)
    assert (r = Model.Op.vals [ Model.Value.Int (k - 1) ]);
    let st : Store.Store_intf.delivery_stats = stats () in
    {
      s_label = label;
      k;
      s_scans = st.Store.Store_intf.scans;
      s_max_buffer = st.Store.Store_intf.max_buffer;
      s_elapsed;
    }
end

module Stress_indexed = Stress (Store.Causal_mvr_store)
module Stress_naive = Stress (Store.Causal_naive_store)

let stress_indexed ~k =
  Stress_indexed.run ~label:Store.Causal_mvr_store.name
    ~reset:Store.Causal_mvr_store.reset_delivery_stats
    ~stats:Store.Causal_mvr_store.delivery_stats ~k

let stress_naive ~k =
  Stress_naive.run ~label:Store.Causal_naive_store.name
    ~reset:Store.Causal_naive_store.reset_delivery_stats
    ~stats:Store.Causal_naive_store.delivery_stats ~k

(* ---------- replication soak (simulator-driven) ---------- *)

module Soak (S : Store.Store_intf.S) = struct
  module R = Sim.Runner.Make (S)

  let run ?(coalesce = false) ~label ~reset ~stats ~n ~objects ~ops ~seed () =
    let rng = Util.Rng.create seed in
    let sim =
      R.create ~seed ~record_witness:false ~coalesce
        ~policy:(Sim.Net_policy.random_delay ()) ~n ()
    in
    let steps =
      Sim.Workload.generate ~rng ~n ~objects ~ops ~spacing:0.25
        Sim.Workload.register_mix
    in
    reset ();
    let t0 = Sys.time () in
    Sim.Workload.run
      (fun ~replica ~obj op -> R.op sim ~replica ~obj op)
      ~advance:(R.advance_to sim) steps;
    R.run_until_quiescent sim;
    let elapsed = Sys.time () -. t0 in
    let st : Store.Store_intf.delivery_stats = stats () in
    let msgs = R.messages_sent sim in
    {
      label = (if coalesce then label ^ "+coalesce" else label);
      n;
      ops;
      messages = List.length msgs;
      total_bytes =
        List.fold_left
          (fun acc m -> acc + String.length m.Model.Message.payload)
          0 msgs;
      deliveries = st.Store.Store_intf.delivered;
      scans = st.Store.Store_intf.scans;
      max_buffer = st.Store.Store_intf.max_buffer;
      elapsed;
    }
end

module Soak_indexed = Soak (Store.Causal_mvr_store)
module Soak_naive = Soak (Store.Causal_naive_store)

let soak_indexed ?coalesce ~n ~objects ~ops ~seed () =
  Soak_indexed.run ?coalesce ~label:Store.Causal_mvr_store.name
    ~reset:Store.Causal_mvr_store.reset_delivery_stats
    ~stats:Store.Causal_mvr_store.delivery_stats ~n ~objects ~ops ~seed ()

let soak_naive ?coalesce ~n ~objects ~ops ~seed () =
  Soak_naive.run ?coalesce ~label:Store.Causal_naive_store.name
    ~reset:Store.Causal_naive_store.reset_delivery_stats
    ~stats:Store.Causal_naive_store.delivery_stats ~n ~objects ~ops ~seed ()

(* ---------- the experiment table ---------- *)

let f_ops_per_s s = if s.elapsed > 0.0 then Tables.f1 (float_of_int s.ops /. s.elapsed) else "-"

let run ppf =
  (* one task per k, fanned out over domains: a task's reset/run/read of the
     domain-local delivery counters never leaves its domain, and same-domain
     tasks run sequentially, so the counters stay coherent at any -j *)
  let stress_rows =
    Harness.sweep
      (List.map
         (fun k () ->
           let naive = stress_naive ~k in
           let indexed = stress_indexed ~k in
           let row (s : stress) =
             [
               s.s_label;
               string_of_int s.k;
               string_of_int s.s_scans;
               Tables.f1 (float_of_int s.s_scans /. float_of_int s.k);
               string_of_int s.s_max_buffer;
             ]
           in
           [ row naive; row indexed ])
         [ 256; 512; 1024; 2048 ])
    |> List.concat
  in
  Tables.print ppf ~title:(title ^ " — reverse-delivery buffering stress")
    ~header:[ "store"; "k"; "scans"; "scans/k"; "peak buffer" ]
    stress_rows;
  Tables.note ppf
    "k single-update messages delivered in reverse: the naive list buffer";
  Tables.note ppf
    "rescans everything per record (scans/k grows with k, i.e. quadratic";
  Tables.note ppf
    "total); the dependency-indexed buffer wakes only the one dependent";
  Tables.note ppf "record per delivery (scans/k is a small constant).";
  let soak_rows =
    Harness.sweep
      (List.map
         (fun (n, ops, seed) () -> soak_indexed ~n ~objects:(2 * n) ~ops ~seed ())
         [ (4, 2000, 2001); (8, 4000, 2002); (16, 4000, 2003) ])
    |> List.map (fun s ->
        [
          s.label;
          string_of_int s.n;
          string_of_int s.ops;
          string_of_int s.messages;
          Tables.f1 (float_of_int s.total_bytes /. float_of_int s.ops);
          string_of_int s.scans;
          Tables.f1 (float_of_int s.scans /. float_of_int (max 1 s.deliveries));
          f_ops_per_s s;
        ])
  in
  Tables.print ppf ~title:(title ^ " — random-workload soak (indexed store)")
    ~header:[ "store"; "n"; "ops"; "messages"; "bytes/op"; "scans"; "scans/delivery"; "ops/s" ]
    soak_rows;
  Tables.note ppf
    "Random register workloads over a reordering network, run to quiescence.";
  Tables.note ppf
    "scans/delivery is the delivery-buffer work per applied update; ops/s is";
  Tables.note ppf "CPU-clock dependent (and inflated under -j > 1: Sys.time counts";
  Tables.note ppf "every domain) and excluded from any test assertion."
