open Haec_wire
open Haec_vclock
open Haec_model
module Int_map = Map.Make (Int)
module Fqueue = Haec_util.Fqueue

type swrite = {
  origin : int;
  oseq : int;  (** per-origin write counter, from 1 *)
  obj : int;
  value : Value.t;
}

let encode_swrite enc w =
  Wire.Encoder.uint enc w.origin;
  Wire.Encoder.uint enc w.oseq;
  Wire.Encoder.uint enc w.obj;
  Value.encode enc w.value

let decode_swrite dec =
  let origin = Wire.Decoder.uint dec in
  let oseq = Wire.Decoder.uint dec in
  let obj = Wire.Decoder.uint dec in
  let value = Value.decode dec in
  { origin; oseq; obj; value }

type payload =
  | Writes of swrite list  (** client writes travelling to the sequencer *)
  | Orders of (int * swrite) list  (** (global seq, write), from the sequencer *)

let encode_payload enc = function
  | Writes ws ->
    Wire.Encoder.uint enc 0;
    Wire.Encoder.list enc encode_swrite ws
  | Orders os ->
    Wire.Encoder.uint enc 1;
    Wire.Encoder.list enc
      (fun enc (g, w) ->
        Wire.Encoder.uint enc g;
        encode_swrite enc w)
      os

let decode_payload dec =
  match Wire.Decoder.uint dec with
  | 0 -> Writes (Wire.Decoder.list dec decode_swrite)
  | 1 ->
    Orders
      (Wire.Decoder.list dec (fun dec ->
           let g = Wire.Decoder.uint dec in
           let w = decode_swrite dec in
           (g, w)))
  | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad gsp payload tag %d" tag))

type state = {
  n : int;
  me : int;
  (* confirmed global prefix *)
  confirmed : int;  (** number of globally sequenced writes applied *)
  objects : (int * swrite) Int_map.t;  (** obj -> (gseq, winning write) *)
  applied : Dot.Set.t;  (** dots (origin, oseq) of confirmed writes *)
  order_buffer : (int * swrite) list;  (** out-of-order sequencer output *)
  (* this replica's writes not yet confirmed, oldest first *)
  unconfirmed : swrite Fqueue.t;
  next_oseq : int;
  (* outgoing *)
  out_writes : swrite list;  (** newest first *)
  out_orders : (int * swrite) list;  (** newest first; sequencer only *)
  (* sequencer role (me = 0) *)
  next_gseq : int;
  sequenced : Dot.Set.t;  (** dots already assigned a global position *)
}

let name = "gsp-total-order"

let invisible_reads = true

let op_driven = false

let sequencer = 0

let init ~n ~me =
  {
    n;
    me;
    confirmed = 0;
    objects = Int_map.empty;
    applied = Dot.Set.empty;
    order_buffer = [];
    unconfirmed = Fqueue.empty;
    next_oseq = 1;
    out_writes = [];
    out_orders = [];
    next_gseq = 1;
    sequenced = Dot.Set.empty;
  }

let dot_of w = Dot.make ~replica:w.origin ~seq:w.oseq

(* apply the contiguous prefix of buffered orders *)
let rec drain t =
  match List.find_opt (fun (g, _) -> g = t.confirmed + 1) t.order_buffer with
  | None -> t
  | Some ((g, w) as entry) ->
    let order_buffer = List.filter (fun e -> e <> entry) t.order_buffer in
    let objects =
      match Int_map.find_opt w.obj t.objects with
      | Some (g', _) when g' > g -> t.objects
      | _ -> Int_map.add w.obj (g, w) t.objects
    in
    (* only own writes sit in [unconfirmed], so a remote confirmation
       never needs the O(n) sweep *)
    let unconfirmed =
      if w.origin <> t.me then t.unconfirmed
      else
        match Fqueue.peek t.unconfirmed with
        | Some u when Dot.equal (dot_of u) (dot_of w) ->
          (* the common case: own writes confirm in issue order *)
          snd (Option.get (Fqueue.pop t.unconfirmed))
        | _ ->
          Fqueue.of_list
            (List.filter
               (fun u -> not (Dot.equal (dot_of u) (dot_of w)))
               (Fqueue.to_list t.unconfirmed))
    in
    drain
      {
        t with
        confirmed = g;
        objects;
        applied = Dot.Set.add (dot_of w) t.applied;
        order_buffer;
        unconfirmed;
      }

(* the sequencer assigns the next global position to a fresh write *)
let sequence t w =
  if Dot.Set.mem (dot_of w) t.sequenced then t
  else
    let entry = (t.next_gseq, w) in
    drain
      {
        t with
        next_gseq = t.next_gseq + 1;
        sequenced = Dot.Set.add (dot_of w) t.sequenced;
        out_orders = entry :: t.out_orders;
        order_buffer = entry :: t.order_buffer;
      }

(* Witness note: the GSP store is deliberately outside the
   write-propagating class, and its visibility is a global prefix rather
   than per-object dots, so we report the minimal sound witness: the
   replica's own unconfirmed writes plus confirmed winners. The E12
   experiment asserts liveness/availability behaviour, not witness
   completeness. *)
let witness_of t =
  let confirmed_winners =
    Int_map.fold (fun obj (_, w) acc -> (obj, dot_of w) :: acc) t.objects []
  in
  let own =
    List.rev (Fqueue.fold (fun acc w -> (w.obj, dot_of w) :: acc) [] t.unconfirmed)
  in
  confirmed_winners @ own

let do_op t ~obj op =
  match op with
  | Op.Read ->
    (* own unconfirmed writes overlay the confirmed prefix *)
    let own_last =
      Fqueue.fold (fun acc w -> if w.obj = obj then Some w else acc) None t.unconfirmed
    in
    let vals =
      match (own_last, Int_map.find_opt obj t.objects) with
      | Some last, _ -> [ last.value ]
      | None, Some (_, w) -> [ w.value ]
      | None, None -> []
    in
    (t, Op.vals vals, lazy { Store_intf.visible = witness_of t; self = None })
  | Op.Write v ->
    let w = { origin = t.me; oseq = t.next_oseq; obj; value = v } in
    let witness = lazy { Store_intf.visible = witness_of t; self = Some (dot_of w) } in
    let t =
      { t with next_oseq = t.next_oseq + 1; unconfirmed = Fqueue.push t.unconfirmed w }
    in
    let t =
      if t.me = sequencer then sequence t w else { t with out_writes = w :: t.out_writes }
    in
    (t, Op.Ok, witness)
  | Op.Add _ | Op.Remove _ -> invalid_arg "Gsp_store: only read/write supported"

let has_pending t = t.out_writes <> [] || t.out_orders <> []

let send t =
  if not (has_pending t) then invalid_arg "Gsp_store.send: nothing pending";
  let payload =
    Wire.encode (fun enc ->
        encode_payload enc
          (if t.out_orders <> [] then Orders (List.rev t.out_orders)
           else Writes (List.rev t.out_writes)))
  in
  (* a send relays everything pending; orders and writes never coexist at
     one replica (only the sequencer emits orders, and its own writes are
     sequenced locally), so one variant always suffices *)
  ({ t with out_writes = []; out_orders = [] }, payload)

let receive t ~sender:_ payload =
  match Wire.decode payload decode_payload with
  | Writes ws ->
    if t.me = sequencer then List.fold_left sequence t ws
    else t (* not the intended recipient: ignore (cf. paper Section 2) *)
  | Orders os ->
    let fresh (g, _) = g > t.confirmed && not (List.exists (fun (g', _) -> g' = g) t.order_buffer) in
    drain { t with order_buffer = List.filter fresh os @ t.order_buffer }
