open Haec_wire
open Haec_vclock
open Haec_model

type update = {
  vv : Vclock.t;
  dot : Dot.t;
  value : Value.t;
}

type t = {
  n : int;
  cc : Vclock.t;
  sibs : update list;
}

let empty ~n = { n; cc = Vclock.zero ~n; sibs = [] }

let local_write t ~me value =
  let vv = Vclock.tick t.cc me in
  let dot = Dot.make ~replica:me ~seq:(Vclock.get vv me) in
  let u = { vv; dot; value } in
  ({ t with cc = vv; sibs = [ u ] }, u)

let apply t u =
  (* Stale or duplicate: the dot is already covered by the causal context,
     so some applied write dominates it (see the module doc invariant). *)
  if u.dot.Dot.seq <= Vclock.get t.cc u.dot.Dot.replica then t
  else
    let survivors = List.filter (fun s -> not (Vclock.leq s.vv u.vv)) t.sibs in
    { t with cc = Vclock.merge t.cc u.vv; sibs = u :: survivors }

let read t = List.sort_uniq Value.compare (List.map (fun s -> s.value) t.sibs)

let siblings t = t.sibs

let causal_context t = t.cc

let visible_dots t =
  let acc = ref [] in
  for r = 0 to t.n - 1 do
    for seq = 1 to Vclock.get t.cc r do
      acc := Dot.make ~replica:r ~seq :: !acc
    done
  done;
  !acc

(* The clock codec is the only version-dependent part: v2 emits the
   compressed self-describing form, and [decode_update] accepts either
   via the marker byte, so mixed-version peers interoperate without any
   per-connection negotiation state. *)
let encode_update enc u =
  (match Wire.Version.current () with
  | Wire.Version.V1 -> Vclock.encode enc u.vv
  | Wire.Version.V2 -> Vclock.encode_c enc u.vv);
  Dot.encode enc u.dot;
  Value.encode enc u.value

let decode_update dec =
  let vv = Vclock.decode_any dec in
  let dot = Dot.decode dec in
  let value = Value.decode dec in
  { vv; dot; value }

let covered cc (u : update) = u.dot.Dot.seq <= Vclock.get cc u.dot.Dot.replica

let same_dot a b = Dot.equal a.dot b.dot

let join a b =
  if a.n <> b.n then invalid_arg "Mvr_object.join: replica count mismatch";
  let in_ l u = List.exists (same_dot u) l in
  let keep mine other_cc other_sibs =
    (* survive if the other side also has it, or never heard of it *)
    List.filter (fun s -> in_ other_sibs s || not (covered other_cc s)) mine
  in
  let from_a = keep a.sibs b.cc b.sibs in
  let from_b =
    List.filter (fun s -> not (in_ from_a s)) (keep b.sibs a.cc a.sibs)
  in
  { n = a.n; cc = Vclock.merge a.cc b.cc; sibs = from_a @ from_b }

let encode enc t =
  Wire.Encoder.uint enc t.n;
  (match Wire.Version.current () with
  | Wire.Version.V1 -> Vclock.encode enc t.cc
  | Wire.Version.V2 -> Vclock.encode_c enc t.cc);
  Wire.Encoder.list enc encode_update t.sibs

let decode dec =
  let n = Wire.Decoder.uint dec in
  let cc = Vclock.decode_any dec in
  let sibs = Wire.Decoder.list dec decode_update in
  { n; cc; sibs }
