(** Protocol-level anti-entropy as a store transformer.

    [Make (S)] wraps any store with a digest/repair protocol so that
    replicas detect and close their own delivery gaps over the wire,
    instead of relying on the simulator's omniscient retransmission:

    - every broadcast of the inner store leaves as a sequence-numbered
      {e update} item ([(origin, seq)] with [origin] the sender and [seq]
      its send counter), and every replica logs {e every} payload it
      applies — its own and every peer's — so any replica can repair any
      origin's stream for anybody else;
    - a gossip {e tick} (driven by the simulator clock) queues a {e digest}
      broadcast: the replica's version vector [have], whose component [o]
      counts the contiguous prefix of origin [o]'s stream it has applied;
    - a received digest is compared against [have]: where the peer is
      behind, the replica {e pushes} a batched {e repair} (capped at
      {!repair_batch} payloads per origin, gated by per-peer exponential
      backoff); where the peer is ahead, it sends a targeted
      {e repair request} (per-origin exponential backoff), which the peer
      answers ungated — an explicit ask is never throttled;
    - repairs and direct updates alike are deduplicated against the log
      and applied to the inner store in per-origin sequence order, so the
      inner replica sees an exactly-once, per-origin-FIFO stream no matter
      how the network duplicated, reordered, or dropped.

    Backoff is counted in gossip rounds and capped ({!max_backoff}), never
    infinite, so repair stays live: as long as ticks keep firing and the
    network is sufficiently connected in the sense of the paper's
    Section 2 (the undirected graph of pairs with both directions alive is
    connected), every update reaches every replica even when some links
    are permanently dead — a digest travelling one live direction triggers
    a push from any third replica that already has the bytes.

    Digests, repairs, and requests are control traffic: they carry no
    sequence numbers of their own and are regenerated from state, so a
    crash that loses the queued control items costs nothing — the next
    tick re-announces, and the durable replay of the logged update stream
    ({!Durable.Make}) reconstructs [have] and the log exactly.

    {b Wire v2.} When {!Haec_wire.Wire.Version} selects [V2] at replica
    creation, the same protocol rides a leaner encoding (DESIGN.md §4h):
    the envelope leads with a [0x00, 2] version marker (a v1 envelope
    starts with its item count, which is at least 1, so the two framings
    are self-describing); full digests are compressed vector clocks; a
    digest whose [have] already matches the last one sent is {e elided}
    entirely (a full digest is still forced every {!full_digest_every}
    rounds, bounding staleness), and otherwise only the {e changed}
    entries go out as a {!Haec_wire.Wire.Gossip.Digest_delta}; the
    repairs queued in one round toward one destination are merged,
    deduplicated, and encoded as {!Haec_wire.Wire.Gossip.Repair_runs} —
    per-origin runs of consecutive sequence numbers, so the per-payload
    [(origin, seq)] labels collapse into one run header. Three further
    duplicate-suppression rules exploit the broadcast transport: an
    update or repair item proves what its {e sender} holds, so receivers
    lift their view of the sender accordingly without waiting for a
    digest; a replica that is not the origin of a missing prefix defers
    its push by one digest cycle, giving the origin — which every digest
    also reached — the first shot; and repair payloads addressed to a
    third replica are ingested opportunistically, since the bytes arrived
    anyway. Decoding is version-agnostic throughout — every v2 layout
    hides behind a marker byte no v1 item starts with — so mixed fleets
    interoperate; a replica that {e receives} a v1 envelope downgrades its
    own emissions to v1 for good (sticky negotiation), which keeps a
    mixed fleet conservatively on the common format.

    {b Dynamic membership.} A joining replica announces itself with a
    {!Haec_wire.Wire.Gossip.Hello} (via {!Make.announce_join}, applied by
    the runner) that rides with its first — empty — digest; every peer
    that hears it resets its push backoff toward the joiner and answers
    with a digest of its own, so the ordinary digest/repair machinery
    performs the bootstrap state transfer without a dedicated protocol. A
    graceful leave announces a {!Haec_wire.Wire.Gossip.Goodbye}
    ({!Make.announce_leave}); a crash-leave announces nothing, and the
    survivors converge among themselves — the reach-based {!Make.settled}
    predicate demands agreement only up to the longest contiguous prefix
    of each origin's stream that the surviving logs can still reconstruct,
    so payloads that died with a crash-leaver (orphaning later seqs) do
    not wedge quiescence. Membership knowledge here is deliberately
    minimal and eventually accurate — an epoch high-water mark and a
    departed set — matching what eventual consistency actually requires
    of a failure detector (Dubois et al., PAPERS.md); the authoritative
    epoch-stamped view lives in the simulator
    ({!Haec_sim.Membership}). *)

open Haec_wire
open Haec_vclock

(* Protocol tunables. Process-global atomics rather than per-state fields
   so the CLI can set them once before any replica exists; the setters
   validate because a zero batch or backoff deadlocks repair. *)

let repair_batch_v = Atomic.make 32

let max_backoff_v = Atomic.make 32

let full_digest_every_v = Atomic.make 4

let repair_batch () = Atomic.get repair_batch_v

let max_backoff () = Atomic.get max_backoff_v

let full_digest_every () = Atomic.get full_digest_every_v

let set_repair_batch n =
  if n < 1 then invalid_arg "Anti_entropy.set_repair_batch: must be >= 1";
  Atomic.set repair_batch_v n

let set_max_backoff n =
  if n < 1 then invalid_arg "Anti_entropy.set_max_backoff: must be >= 1";
  Atomic.set max_backoff_v n

let set_full_digest_every n =
  if n < 1 then invalid_arg "Anti_entropy.set_full_digest_every: must be >= 1";
  Atomic.set full_digest_every_v n

(* Pure classifier for trace labels: name the protocol items riding in an
   encoded anti-entropy envelope without touching any state. Repair items
   report their payload count. Payloads that are not anti-entropy
   envelopes (some other transport's bytes) classify as "". *)
let classify payload =
  match
    Wire.decode payload (fun dec ->
        (* v2 envelopes lead with a 0x00 marker and a version byte; a v1
           envelope starts with its item count >= 1 *)
        if Wire.Decoder.peek dec = 0 then begin
          let _ = Wire.Decoder.uint dec in
          let v = Wire.Decoder.uint dec in
          if Wire.Version.of_int v = None then
            raise (Wire.Decoder.Malformed "anti-entropy envelope: unknown version")
        end;
        let count = Wire.Decoder.uint dec in
        let items = ref [] in
        let add name extra =
          match List.assoc_opt name !items with
          | Some r -> r := !r + extra
          | None -> items := !items @ [ (name, ref extra) ]
        in
        for _ = 1 to count do
          match Wire.Gossip.decode_kind dec with
          | Wire.Gossip.Update ->
            let _ = Wire.Decoder.uint dec in
            Wire.Decoder.skip_string dec;
            add "update" 1
          | Wire.Gossip.Digest ->
            let _ = Vclock.decode_any dec in
            add "digest" 1
          | Wire.Gossip.Digest_delta ->
            let pairs = Wire.Decoder.uint dec in
            for _ = 1 to pairs do
              let _ = Wire.Decoder.uint dec in
              let _ = Wire.Decoder.uint dec in
              ()
            done;
            add "digest-delta" 1
          | Wire.Gossip.Repair_request ->
            let _ = Wire.Decoder.uint dec in
            let _ = Wire.Decoder.uint dec in
            let _ = Wire.Decoder.uint dec in
            add "request" 1
          | Wire.Gossip.Repair ->
            let _ = Wire.Decoder.uint dec in
            let k = ref 0 in
            let _ =
              Wire.Decoder.list dec (fun dec ->
                  let _ = Wire.Decoder.uint dec in
                  let _ = Wire.Decoder.uint dec in
                  Wire.Decoder.skip_string dec;
                  incr k)
            in
            add "repair" !k
          | Wire.Gossip.Repair_runs ->
            let _ = Wire.Decoder.uint dec in
            let runs = Wire.Decoder.uint dec in
            let k = ref 0 in
            for _ = 1 to runs do
              let _ = Wire.Decoder.uint dec in
              let _ = Wire.Decoder.uint dec in
              let c = Wire.Decoder.uint dec in
              if c > Wire.Decoder.remaining dec then
                raise (Wire.Decoder.Malformed "repair-runs: bad payload count");
              for _ = 1 to c do
                Wire.Decoder.skip_string dec
              done;
              k := !k + c
            done;
            add "repair" !k
          | Wire.Gossip.Hello ->
            let _ = Wire.Decoder.uint dec in
            add "hello" 1
          | Wire.Gossip.Goodbye ->
            let _ = Wire.Decoder.uint dec in
            add "goodbye" 1
        done;
        !items)
  with
  | items ->
    String.concat "+"
      (List.map
         (fun (name, r) -> if !r <= 1 then name else Printf.sprintf "%s(%d)" name !r)
         items)
  | exception _ -> ""

module Make (S : Store_intf.S) : sig
  include Store_intf.S

  val tick : state -> state
  (** Advance the gossip round counter and queue a digest broadcast (the
      store then [has_pending]) — unless, under wire v2, the digest would
      repeat the last one sent and no full digest is due, in which case
      the round stays quiet and the elision is counted. Called by the
      simulator's gossip driver; deliberately {e not} a logged input —
      see the module comment. *)

  val settled : state array -> bool
  (** Whether the given (live member) states have converged: nobody has
      anything queued or pending, and every state has applied, for every
      origin [o], exactly the longest contiguous prefix of [o]'s stream
      that the union of the given logs can still reconstruct (its
      {e reach}). On a static replica set this coincides with "all [have]
      vectors equal and no orphans" — each origin's own log holds its full
      stream — but under crash-leaves the reach may end at a seq that died
      with the leaver, and later orphaned payloads are then tolerated
      forever. An observation-only hook for the simulator's quiescence
      detection; the replicas themselves never see each other's state. *)

  val inner : state -> S.state

  val rounds : state -> int

  val have : state -> Vclock.t

  val orphans : state -> int
  (** Logged payloads beyond the contiguous applied prefix (received
      out-of-order, waiting for a gap to fill). *)

  val queue_depth : state -> int
  (** Control items (digest markers, requests, repairs, membership
      announcements) queued for the next broadcast — the transformer's
      outbound backlog. A healthy replica drains to 0 at every [send];
      sustained growth between sends means the transport is not keeping
      up with repair traffic (backpressure). *)

  val pending_bytes : state -> int
  (** Repair payload bytes sitting in the outbound queue (the dominant
      term of the backlog; control items are O(1) bytes each). Like
      {!queue_depth} this is a pre-[send] backpressure signal, not a
      wire-bytes measure — the v2 encoder may still dedup and
      run-compress these payloads at send time. *)

  val emit_version : state -> Wire.Version.t
  (** The frame version this replica currently emits: the global
      {!Haec_wire.Wire.Version.current} at [init] time, downgraded to
      [V1] — permanently — the first time a v1 envelope is received. *)

  val epoch : state -> int
  (** Highest membership epoch announced by or to this replica; 0 until
      any [Hello]/[Goodbye] is seen. *)

  val knows_departed : state -> peer:int -> bool
  (** Whether this replica heard a [Goodbye] from the peer. *)

  val announce_join : epoch:int -> state -> state
  (** Queue a [Hello] (with a digest of the — empty — local state) for the
      next broadcast. Applied by the runner to a replica entering the set;
      unlogged control state, like {!tick}. *)

  val announce_leave : epoch:int -> state -> state
  (** Queue a [Goodbye] for the next broadcast: a graceful leave. A
      crash-leave announces nothing. *)

  val gossip_stats : unit -> Store_intf.gossip_stats
  (** Aggregate traffic counters across every replica of this module on
      the calling domain, like {!Causal_mvr_store.delivery_stats}. *)

  val reset_gossip_stats : unit -> unit
end = struct
  module Int_map = Map.Make (Int)
  module Int_set = Set.Make (Int)

  let stats_key = Domain.DLS.new_key Store_intf.fresh_gossip_stats

  let stats () = Domain.DLS.get stats_key

  let gossip_stats () = Store_intf.copy_gossip_stats (stats ())

  let reset_gossip_stats () =
    let s = stats () in
    s.Store_intf.digests <- 0;
    s.Store_intf.digest_bytes <- 0;
    s.Store_intf.repairs <- 0;
    s.Store_intf.repair_bytes <- 0;
    s.Store_intf.requests <- 0;
    s.Store_intf.request_bytes <- 0;
    s.Store_intf.updates <- 0;
    s.Store_intf.update_bytes <- 0;
    s.Store_intf.dup_payloads <- 0;
    s.Store_intf.repair_applied <- 0;
    s.Store_intf.memberships <- 0;
    s.Store_intf.membership_bytes <- 0;
    s.Store_intf.digest_deltas <- 0;
    s.Store_intf.digests_elided <- 0

  type peer = {
    view : Vclock.t;  (** pointwise max of every digest heard from this peer *)
    push_due : int;  (** earliest round a repair may be pushed to them *)
    push_backoff : int;
    defer : Int_set.t;
        (** origins whose push toward this peer already waited one digest
            cycle for the origin itself to serve it (wire v2 only) *)
  }

  (* control items queued for the next broadcast; a digest is a marker,
     not a snapshot — the [have] vector is read at send time so it always
     reflects the updates travelling in the same payload. Under wire v2
     the marker resolves at send time to a full digest, a delta against
     the last digest sent, or nothing; [force_full] (membership traffic)
     pins it to a full digest. *)
  type out_item =
    | Out_digest of { force_full : bool }
    | Out_request of { dst : int; origin : int; from_seq : int }
    | Out_repair of { dst : int; items : (int * int * string) list }
    | Out_hello of int  (** membership epoch being announced *)
    | Out_goodbye of int

  let is_digest = function Out_digest _ -> true | _ -> false

  type state = {
    n : int;
    me : int;
    inner : S.state;
    log : string Int_map.t Int_map.t;  (** origin -> seq -> payload *)
    logged : int;  (** total payloads in [log] *)
    have : Vclock.t;  (** contiguous applied prefix per origin *)
    peers : peer Int_map.t;
    req_due : int Int_map.t;  (** origin -> earliest round to re-request *)
    req_backoff : int Int_map.t;
    rounds : int;
    outq_rev : out_item list;
    epoch : int;  (** highest membership epoch seen *)
    away : Int_set.t;  (** peers that said goodbye *)
    emit : Wire.Version.t;  (** see [emit_version] *)
    last_sent_digest : Vclock.t option;  (** [have] as of the last digest sent *)
    last_full_round : int;  (** round of the last full digest sent *)
  }

  let name = "anti-entropy(" ^ S.name ^ ")"

  let invisible_reads = S.invisible_reads

  (* receiving a digest can enqueue a repair: messages become pending
     without any client operation, so the transformer is not op-driven
     (Definition 15) even when the inner store is *)
  let op_driven = false

  let init ~n ~me =
    let peers = ref Int_map.empty in
    for p = 0 to n - 1 do
      if p <> me then
        peers :=
          Int_map.add p
            { view = Vclock.zero ~n; push_due = 0; push_backoff = 1;
              defer = Int_set.empty }
            !peers
    done;
    {
      n;
      me;
      inner = S.init ~n ~me;
      log = Int_map.empty;
      logged = 0;
      have = Vclock.zero ~n;
      peers = !peers;
      req_due = Int_map.empty;
      req_backoff = Int_map.empty;
      rounds = 0;
      outq_rev = [];
      epoch = 0;
      away = Int_set.empty;
      emit = Wire.Version.current ();
      last_sent_digest = None;
      last_full_round = 0;
    }

  let inner t = t.inner

  let rounds t = t.rounds

  let have t = t.have

  let orphans t = t.logged - Vclock.sum t.have

  let queue_depth t = List.length t.outq_rev

  let pending_bytes t =
    List.fold_left
      (fun acc item ->
        match item with
        | Out_repair { items; _ } ->
          List.fold_left (fun a (_, _, p) -> a + String.length p) acc items
        | Out_digest _ | Out_request _ | Out_hello _ | Out_goodbye _ -> acc)
      0 t.outq_rev

  let emit_version t = t.emit

  let epoch t = t.epoch

  let knows_departed t ~peer = Int_set.mem peer t.away

  let announce_join ~epoch t =
    {
      t with
      epoch = max epoch t.epoch;
      outq_rev =
        Out_digest { force_full = true }
        :: Out_hello epoch
        :: List.filter (fun o -> not (is_digest o)) t.outq_rev;
    }

  let announce_leave ~epoch t =
    { t with epoch = max epoch t.epoch; outq_rev = Out_goodbye epoch :: t.outq_rev }

  let log_find t ~origin ~seq =
    match Int_map.find_opt origin t.log with
    | None -> None
    | Some m -> Int_map.find_opt seq m

  let log_add t ~origin ~seq payload =
    let m =
      match Int_map.find_opt origin t.log with Some m -> m | None -> Int_map.empty
    in
    { t with log = Int_map.add origin (Int_map.add seq payload m) t.log;
             logged = t.logged + 1 }

  (* apply every payload of [origin] that is now contiguous with the
     applied prefix, in sequence order; progress resets the per-origin
     request backoff so the next gap is chased eagerly again *)
  let rec cascade t ~origin =
    let next = Vclock.get t.have origin in
    match log_find t ~origin ~seq:next with
    | None -> t
    | Some payload ->
      let inner = S.receive t.inner ~sender:origin payload in
      let t =
        {
          t with
          inner;
          have = Vclock.tick t.have origin;
          req_due = Int_map.remove origin t.req_due;
          req_backoff = Int_map.remove origin t.req_backoff;
        }
      in
      cascade t ~origin

  let ingest t ~origin ~seq ~payload ~via_repair =
    if seq < Vclock.get t.have origin || log_find t ~origin ~seq <> None then begin
      (stats ()).Store_intf.dup_payloads <- (stats ()).Store_intf.dup_payloads + 1;
      t
    end
    else begin
      if via_repair then
        (stats ()).Store_intf.repair_applied <- (stats ()).Store_intf.repair_applied + 1;
      cascade (log_add t ~origin ~seq payload) ~origin
    end

  (* the sender of an update or repair item demonstrably holds the
     payloads it sent: lift our view of its contiguous prefix without
     waiting for its next digest, suppressing duplicate pushes (and
     enabling productive requests) one round earlier. [from_seq] must
     attach to the prefix we already credit the peer with, else the
     evidence is non-contiguous and proves nothing about the prefix. *)
  let note_peer_has t ~peer ~origin ~from_seq ~upto =
    match Int_map.find_opt peer t.peers with
    | None -> t
    | Some p ->
      let cur = Vclock.get p.view origin in
      if from_seq > cur || upto <= cur then t
      else
        let view = Vclock.raise_to p.view origin upto in
        { t with peers = Int_map.add peer { p with view } t.peers }

  (* a batch of [origin]'s stream starting at [from_seq]: consecutive
     logged payloads, at most {!repair_batch} — stopping at the first gap
     never sends less than the contiguous prefix the requester is missing *)
  let batch_from t ~origin ~from_seq =
    let cap = repair_batch () in
    let rec go seq acc count =
      if count = cap then List.rev acc
      else
        match log_find t ~origin ~seq with
        | None -> List.rev acc
        | Some payload -> go (seq + 1) ((origin, seq, payload) :: acc) (count + 1)
    in
    go from_seq [] 0

  let on_digest t ~sender clock =
    if Vclock.size clock <> t.n then
      raise (Wire.Decoder.Malformed "anti-entropy digest: wrong vector size");
    let p =
      match Int_map.find_opt sender t.peers with
      | Some p -> p
      | None -> raise (Wire.Decoder.Malformed "anti-entropy digest: bad sender")
    in
    (* any new progress in the digest forgives the push backoff: a freshly
       joined or long-partitioned peer advancing through its bootstrap must
       not stay pinned at the cap, one batch per 32 rounds *)
    let p =
      if Vclock.leq clock p.view then p
      else { p with push_due = t.rounds; push_backoff = 1 }
    in
    let view = Vclock.merge p.view clock in
    (* push what they are missing, batched per origin, per-peer backoff *)
    let behind = ref [] in
    for o = t.n - 1 downto 0 do
      if Vclock.get t.have o > Vclock.get view o then behind := o :: !behind
    done;
    let t, p =
      if !behind = [] then
        (* caught up: forgive the backoff so the next divergence is
           repaired promptly *)
        (t, { view; push_due = t.rounds; push_backoff = 1; defer = Int_set.empty })
      else begin
        (* under v2, a replica that is not the origin holds its push for
           one digest cycle — the origin heard the same digest and serves
           its own stream first; we only step in if the peer is still
           behind at its next digest *)
        let ready, wait =
          match t.emit with
          | Wire.Version.V1 -> (!behind, [])
          | Wire.Version.V2 ->
            List.partition (fun o -> o = t.me || Int_set.mem o p.defer) !behind
        in
        if ready <> [] && t.rounds >= p.push_due then begin
          let items =
            List.concat_map
              (fun o -> batch_from t ~origin:o ~from_seq:(Vclock.get view o))
              ready
          in
          let t =
            if items = [] then t
            else { t with outq_rev = Out_repair { dst = sender; items } :: t.outq_rev }
          in
          (* send-side optimism (v2): credit the peer with what was just
             pushed, so a stale or duplicated digest cannot re-trigger the
             same push. If the frame is lost the peer stays behind, sees us
             ahead in our next (periodic) digest, and its repair request —
             answered ungated — closes the gap; the push path never fires
             for these seqs again, the request path always will *)
          let view =
            match t.emit with
            | Wire.Version.V1 -> view
            | Wire.Version.V2 ->
              List.fold_left
                (fun v (o, seq, _) -> Vclock.raise_to v o (seq + 1))
                view items
          in
          ( t,
            {
              view;
              push_due = t.rounds + p.push_backoff;
              push_backoff = min (2 * p.push_backoff) (max_backoff ());
              defer = Int_set.of_list wait;
            } )
        end
        else
          (* blocked by backoff or everything deferred: whatever is still
             missing at the peer's next digest is then fair game *)
          (t, { p with view; defer = Int_set.of_list !behind })
      end
    in
    let t = { t with peers = Int_map.add sender p t.peers } in
    (* request what they have and we lack, per-origin backoff *)
    let t = ref t in
    for o = 0 to t.contents.n - 1 do
      if Vclock.get view o > Vclock.get t.contents.have o then begin
        let due = Option.value (Int_map.find_opt o t.contents.req_due) ~default:0 in
        if t.contents.rounds >= due then begin
          let backoff =
            Option.value (Int_map.find_opt o t.contents.req_backoff) ~default:1
          in
          t :=
            {
              t.contents with
              outq_rev =
                Out_request
                  { dst = sender; origin = o; from_seq = Vclock.get t.contents.have o }
                :: t.contents.outq_rev;
              req_due = Int_map.add o (t.contents.rounds + backoff) t.contents.req_due;
              req_backoff =
                Int_map.add o
                  (min (2 * backoff) (max_backoff ()))
                  t.contents.req_backoff;
            }
        end
      end
    done;
    t.contents

  let check_replica t what r =
    if r < 0 || r >= t.n then
      raise
        (Wire.Decoder.Malformed (Printf.sprintf "anti-entropy %s: replica %d" what r))

  (* [v2] says the enclosing envelope was a v2 frame: the broadcast-
     exploiting rules (view inference, opportunistic repair ingestion)
     apply only then, keeping the v1 protocol behaviour byte-for-byte and
     step-for-step what it was *)
  let receive_item t ~sender ~v2 dec =
    match Wire.Gossip.decode_kind dec with
    | Wire.Gossip.Update ->
      let seq = Wire.Decoder.uint dec in
      let payload = Wire.Decoder.string dec in
      check_replica t "update" sender;
      let t =
        if v2 then
          (* a sender's own stream is contiguous by construction *)
          note_peer_has t ~peer:sender ~origin:sender ~from_seq:0 ~upto:(seq + 1)
        else t
      in
      ingest t ~origin:sender ~seq ~payload ~via_repair:false
    | Wire.Gossip.Digest ->
      let clock = Vclock.decode_any dec in
      check_replica t "digest" sender;
      on_digest t ~sender clock
    | Wire.Gossip.Digest_delta ->
      (* only the entries that changed since the sender's last digest,
         as (index-gap, absolute value) pairs; reconstruct a full clock
         against our current view of the sender — entrywise max keeps
         this loss- and reorder-safe, since entries only ever grow *)
      check_replica t "digest-delta" sender;
      let p =
        match Int_map.find_opt sender t.peers with
        | Some p -> p
        | None -> raise (Wire.Decoder.Malformed "anti-entropy digest-delta: bad sender")
      in
      let pairs = Wire.Decoder.uint dec in
      if pairs > t.n then
        raise (Wire.Decoder.Malformed "anti-entropy digest-delta: too many entries");
      let clock = ref p.view in
      let idx = ref (-1) in
      for _ = 1 to pairs do
        let gap = Wire.Decoder.uint dec in
        let v = Wire.Decoder.uint dec in
        idx := !idx + 1 + gap;
        if !idx >= t.n then
          raise (Wire.Decoder.Malformed "anti-entropy digest-delta: index out of range");
        clock := Vclock.raise_to !clock !idx v
      done;
      on_digest t ~sender !clock
    | Wire.Gossip.Repair_request ->
      let dst = Wire.Decoder.uint dec in
      let origin = Wire.Decoder.uint dec in
      let from_seq = Wire.Decoder.uint dec in
      check_replica t "repair-request" dst;
      check_replica t "repair-request" origin;
      if dst <> t.me then t (* broadcast transport: not addressed to us *)
      else begin
        (* an explicit ask is answered ungated: the requester paces itself *)
        match batch_from t ~origin ~from_seq with
        | [] -> t
        | items -> { t with outq_rev = Out_repair { dst = sender; items } :: t.outq_rev }
      end
    | Wire.Gossip.Repair ->
      let dst = Wire.Decoder.uint dec in
      let items =
        Wire.Decoder.list dec (fun dec ->
            let origin = Wire.Decoder.uint dec in
            let seq = Wire.Decoder.uint dec in
            let payload = Wire.Decoder.string dec in
            (origin, seq, payload))
      in
      check_replica t "repair" dst;
      List.iter (fun (origin, _, _) -> check_replica t "repair" origin) items;
      let t =
        if v2 then
          List.fold_left
            (fun t (origin, seq, _) ->
              note_peer_has t ~peer:sender ~origin ~from_seq:seq ~upto:(seq + 1))
            t items
        else t
      in
      if dst <> t.me then t
      else
        List.fold_left
          (fun t (origin, seq, payload) -> ingest t ~origin ~seq ~payload ~via_repair:true)
          t items
    | Wire.Gossip.Repair_runs ->
      (* one merged repair toward [dst]: per-origin runs of consecutive
         seqs. The bytes reached every replica, so even when [dst] is a
         third party we ingest what we ourselves lack (the log dedups),
         and we credit the sender with holding the runs *)
      let dst = Wire.Decoder.uint dec in
      let runs = Wire.Decoder.uint dec in
      if runs > Wire.Decoder.remaining dec then
        raise (Wire.Decoder.Malformed "anti-entropy repair-runs: bad run count");
      check_replica t "repair-runs" dst;
      let t = ref t in
      for _ = 1 to runs do
        let origin = Wire.Decoder.uint dec in
        let from_seq = Wire.Decoder.uint dec in
        let count = Wire.Decoder.uint dec in
        if count > Wire.Decoder.remaining dec then
          raise (Wire.Decoder.Malformed "anti-entropy repair-runs: bad payload count");
        check_replica !t "repair-runs" origin;
        t :=
          note_peer_has !t ~peer:sender ~origin ~from_seq ~upto:(from_seq + count);
        (* the destination is about to receive these too (same broadcast),
           so a third party observing the repair need not push the same
           prefix again; if the dst's link actually dropped the frame, its
           own requests — answered ungated — and the periodic full digests
           restore progress *)
        t := note_peer_has !t ~peer:dst ~origin ~from_seq ~upto:(from_seq + count);
        for j = 0 to count - 1 do
          let payload = Wire.Decoder.string dec in
          t := ingest !t ~origin ~seq:(from_seq + j) ~payload ~via_repair:true
        done
      done;
      !t
    | Wire.Gossip.Hello ->
      let epoch = Wire.Decoder.uint dec in
      check_replica t "hello" sender;
      (* a joiner enters empty: forgive any backoff toward it and answer
         with a digest so it can start requesting immediately *)
      let peers =
        match Int_map.find_opt sender t.peers with
        | None -> t.peers
        | Some p ->
          Int_map.add sender { p with push_due = t.rounds; push_backoff = 1 } t.peers
      in
      let outq_rev =
        if List.exists is_digest t.outq_rev then t.outq_rev
        else Out_digest { force_full = true } :: t.outq_rev
      in
      { t with peers; outq_rev; epoch = max epoch t.epoch;
               away = Int_set.remove sender t.away }
    | Wire.Gossip.Goodbye ->
      let epoch = Wire.Decoder.uint dec in
      check_replica t "goodbye" sender;
      { t with epoch = max epoch t.epoch; away = Int_set.add sender t.away }

  let receive t ~sender payload =
    check_replica t "sender" sender;
    (* fold the envelope's items in order through the state; [Wire.decode]
       checks the whole input was consumed *)
    Wire.decode payload (fun dec ->
        let v2 = Wire.Decoder.peek dec = 0 in
        let t =
          if v2 then begin
            let _ = Wire.Decoder.uint dec in
            let v = Wire.Decoder.uint dec in
            (match Wire.Version.of_int v with
            | Some Wire.Version.V2 -> ()
            | _ ->
              raise (Wire.Decoder.Malformed "anti-entropy envelope: unknown version"));
            t
          end
          else if t.emit = Wire.Version.V1 then t
          else
            (* sticky downgrade: a peer that talks v1 may not understand
               v2 layouts, so from here on neither do we emit them *)
            { t with emit = Wire.Version.V1 }
        in
        let count = Wire.Decoder.uint dec in
        if count > Wire.Decoder.remaining dec then
          raise (Wire.Decoder.Malformed "anti-entropy envelope: item count exceeds input");
        let t = ref t in
        for _ = 1 to count do
          t := receive_item !t ~sender ~v2 dec
        done;
        !t)

  let do_op t ~obj op =
    let inner, rval, witness = S.do_op t.inner ~obj op in
    ({ t with inner }, rval, witness)

  let has_pending t = t.outq_rev <> [] || S.has_pending t.inner

  let tick t =
    let t = { t with rounds = t.rounds + 1 } in
    if List.exists is_digest t.outq_rev then t
    else if
      (* v2 elision: nothing changed since the last digest went out and no
         periodic full digest is due — stay quiet this round *)
      t.emit = Wire.Version.V2
      && t.rounds - t.last_full_round < full_digest_every ()
      && (match t.last_sent_digest with
         | Some d -> Vclock.equal d t.have
         | None -> false)
      && not (S.has_pending t.inner)
    then begin
      (stats ()).Store_intf.digests_elided <-
        (stats ()).Store_intf.digests_elided + 1;
      t
    end
    else { t with outq_rev = Out_digest { force_full = false } :: t.outq_rev }

  (* group per-destination repair payloads — already deduplicated and
     sorted by (origin, seq) — into runs of consecutive seqs per origin *)
  let to_runs items =
    let rec go acc cur = function
      | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
      | (origin, seq, payload) :: rest -> (
        match cur with
        | Some (o, from_seq, ps_rev, next) when o = origin && seq = next ->
          go acc (Some (o, from_seq, payload :: ps_rev, next + 1)) rest
        | Some r -> go (r :: acc) (Some (origin, seq, [ payload ], seq + 1)) rest
        | None -> go acc (Some (origin, seq, [ payload ], seq + 1)) rest)
    in
    List.map
      (fun (origin, from_seq, ps_rev, _) -> (origin, from_seq, List.rev ps_rev))
      (go [] None items)

  let send t =
    if not (has_pending t) then invalid_arg "Anti_entropy.send: nothing pending";
    (* a fresh inner broadcast takes the next slot of my stream: my own
       stream is contiguous by construction, so the next sequence number
       is exactly have(me) *)
    let t, update =
      if S.has_pending t.inner then begin
        let inner, payload = S.send t.inner in
        let seq = Vclock.get t.have t.me in
        let t = log_add { t with inner } ~origin:t.me ~seq payload in
        ({ t with have = Vclock.tick t.have t.me }, Some (seq, payload))
      end
      else (t, None)
    in
    let v2 = t.emit = Wire.Version.V2 in
    let outs = List.rev t.outq_rev in
    let digest_marker = List.exists is_digest outs in
    let force_full =
      List.exists (function Out_digest { force_full } -> force_full | _ -> false) outs
    in
    (* merge the round's repairs per destination and deduplicate: several
       digests (or requests) in one round routinely ask for overlapping
       prefixes, and one copy serves them all *)
    let repair_dsts =
      List.filter_map (function Out_repair { dst; _ } -> Some dst | _ -> None) outs
      |> List.sort_uniq compare
    in
    let merged_repair dst =
      List.concat_map
        (function Out_repair { dst = d; items } when d = dst -> items | _ -> [])
        outs
      |> List.sort_uniq (fun (o1, s1, _) (o2, s2, _) -> compare (o1, s1) (o2, s2))
    in
    let repair_packets =
      if not v2 then List.map (fun dst -> (dst, merged_repair dst)) repair_dsts
      else begin
        (* under v2 every receiver opportunistically ingests any repair in
           the broadcast, whoever it is addressed to — so a payload already
           present for one destination need not repeat for another *)
        let seen = Hashtbl.create 64 in
        List.filter_map
          (fun dst ->
            let items =
              List.filter
                (fun (o, s, _) ->
                  if Hashtbl.mem seen (o, s) then false
                  else begin
                    Hashtbl.add seen (o, s) ();
                    true
                  end)
                (merged_repair dst)
            in
            if items = [] then None else Some (dst, items))
          repair_dsts
      end
    in
    let outs =
      List.filter (function Out_digest _ | Out_repair _ -> false | _ -> true) outs
    in
    (* resolve the digest marker against [have] as it is now — after the
       update above ticked it *)
    let digest_mode =
      if not digest_marker then `Absent
      else if not v2 then `Full
      else if
        force_full
        || t.last_sent_digest = None
        || t.rounds - t.last_full_round >= full_digest_every ()
      then `Full
      else
        match t.last_sent_digest with
        | Some d when Vclock.equal d t.have -> `Elide
        | Some d -> `Delta d
        | None -> `Full
    in
    let count =
      (if update = None then 0 else 1)
      + (match digest_mode with `Full | `Delta _ -> 1 | `Absent | `Elide -> 0)
      + List.length outs + List.length repair_packets
    in
    let st = stats () in
    let payload =
      Wire.encode (fun enc ->
          if v2 then begin
            (* envelope version marker: a v1 envelope starts with its item
               count, which is always >= 1 *)
            Wire.Encoder.uint enc 0;
            Wire.Encoder.uint enc (Wire.Version.to_int Wire.Version.V2)
          end;
          Wire.Encoder.uint enc count;
          let mark = ref (Wire.Encoder.size_bytes enc) in
          let bytes () =
            let now = Wire.Encoder.size_bytes enc in
            let d = now - !mark in
            mark := now;
            d
          in
          (match update with
          | None -> ()
          | Some (seq, payload) ->
            Wire.Gossip.encode_kind enc Wire.Gossip.Update;
            Wire.Encoder.uint enc seq;
            Wire.Encoder.string enc payload;
            st.Store_intf.updates <- st.Store_intf.updates + 1;
            st.Store_intf.update_bytes <- st.Store_intf.update_bytes + bytes ());
          (match digest_mode with
          | `Absent -> ()
          | `Elide ->
            st.Store_intf.digests_elided <- st.Store_intf.digests_elided + 1
          | `Full ->
            Wire.Gossip.encode_kind enc Wire.Gossip.Digest;
            if v2 then Vclock.encode_c enc t.have else Vclock.encode enc t.have;
            st.Store_intf.digests <- st.Store_intf.digests + 1;
            st.Store_intf.digest_bytes <- st.Store_intf.digest_bytes + bytes ()
          | `Delta prev ->
            Wire.Gossip.encode_kind enc Wire.Gossip.Digest_delta;
            let changed = ref [] in
            for i = t.n - 1 downto 0 do
              if Vclock.get t.have i <> Vclock.get prev i then
                changed := i :: !changed
            done;
            Wire.Encoder.uint enc (List.length !changed);
            let last = ref (-1) in
            List.iter
              (fun i ->
                Wire.Encoder.uint enc (i - !last - 1);
                Wire.Encoder.uint enc (Vclock.get t.have i);
                last := i)
              !changed;
            st.Store_intf.digest_deltas <- st.Store_intf.digest_deltas + 1;
            st.Store_intf.digest_bytes <- st.Store_intf.digest_bytes + bytes ());
          List.iter
            (function
              | Out_digest _ | Out_repair _ -> ()
              | Out_request { dst; origin; from_seq } ->
                Wire.Gossip.encode_kind enc Wire.Gossip.Repair_request;
                Wire.Encoder.uint enc dst;
                Wire.Encoder.uint enc origin;
                Wire.Encoder.uint enc from_seq;
                st.Store_intf.requests <- st.Store_intf.requests + 1;
                st.Store_intf.request_bytes <- st.Store_intf.request_bytes + bytes ()
              | Out_hello epoch ->
                Wire.Gossip.encode_kind enc Wire.Gossip.Hello;
                Wire.Encoder.uint enc epoch;
                st.Store_intf.memberships <- st.Store_intf.memberships + 1;
                st.Store_intf.membership_bytes <- st.Store_intf.membership_bytes + bytes ()
              | Out_goodbye epoch ->
                Wire.Gossip.encode_kind enc Wire.Gossip.Goodbye;
                Wire.Encoder.uint enc epoch;
                st.Store_intf.memberships <- st.Store_intf.memberships + 1;
                st.Store_intf.membership_bytes <- st.Store_intf.membership_bytes + bytes ())
            outs;
          List.iter
            (fun (dst, items) ->
              if v2 then begin
                Wire.Gossip.encode_kind enc Wire.Gossip.Repair_runs;
                Wire.Encoder.uint enc dst;
                let runs = to_runs items in
                Wire.Encoder.uint enc (List.length runs);
                List.iter
                  (fun (origin, from_seq, payloads) ->
                    Wire.Encoder.uint enc origin;
                    Wire.Encoder.uint enc from_seq;
                    Wire.Encoder.uint enc (List.length payloads);
                    List.iter (Wire.Encoder.string enc) payloads)
                  runs
              end
              else begin
                Wire.Gossip.encode_kind enc Wire.Gossip.Repair;
                Wire.Encoder.uint enc dst;
                Wire.Encoder.list enc
                  (fun enc (origin, seq, payload) ->
                    Wire.Encoder.uint enc origin;
                    Wire.Encoder.uint enc seq;
                    Wire.Encoder.string enc payload)
                  items
              end;
              st.Store_intf.repairs <- st.Store_intf.repairs + 1;
              st.Store_intf.repair_bytes <- st.Store_intf.repair_bytes + bytes ())
            repair_packets)
    in
    let t =
      {
        t with
        outq_rev = [];
        last_sent_digest =
          (match digest_mode with
          | `Full | `Delta _ -> Some t.have
          | `Absent | `Elide -> t.last_sent_digest);
        last_full_round =
          (match digest_mode with `Full -> t.rounds | _ -> t.last_full_round);
      }
    in
    (t, payload)

  (* reach(o): the longest contiguous prefix of origin [o]'s stream that
     the union of the given logs can reconstruct. On a static set this is
     just [o]'s own send count ([o]'s log of its own stream is contiguous
     by construction), but payloads that died with a crash-leaver cap the
     reach of its stream at the first permanently lost seq — later seqs
     some survivor may hold stay orphaned forever and must not block
     quiescence. *)
  let settled states =
    Array.length states = 0
    || begin
         let n = states.(0).n in
         let reach o =
           let rec go seq =
             if Array.exists (fun t -> log_find t ~origin:o ~seq <> None) states then
               go (seq + 1)
             else seq
           in
           go 0
         in
         let target = Array.init n reach in
         Array.for_all
           (fun t ->
             t.outq_rev = []
             && (not (S.has_pending t.inner))
             && begin
                  let ok = ref true in
                  for o = 0 to n - 1 do
                    if Vclock.get t.have o <> target.(o) then ok := false
                  done;
                  !ok
                end)
           states
       end
end
