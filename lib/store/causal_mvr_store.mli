(** Causally consistent MVR store.

    Causal broadcast with dependency vectors (Ahamad et al. style): remote
    updates are buffered until their causal dependencies have been applied,
    so every execution complies with a causally consistent abstract
    execution regardless of network reordering. Write-propagating
    (invisible reads, op-driven messages) and eventually consistent.

    This is the Section 6 baseline: its messages carry vector clocks whose
    entries grow with the number of operations, i.e. Theta(n lg k) bits —
    the upper bound matching the Theorem 12 lower bound when [s >= n]. *)

include Store_intf.S

val delivery_stats : unit -> Store_intf.delivery_stats
(** Delivery-buffer work counters (scans, deliveries, peak buffered),
    aggregated across all replicas of this module; read by the E20 soak
    benchmark. *)

val reset_delivery_stats : unit -> unit
