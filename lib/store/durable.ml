(** Crash durability as a store transformer.

    [Make (S)] wraps any store with a durable image: a serialized
    checkpoint (the store's replay log up to the last checkpoint, encoded
    through the wire layer) plus a write-ahead log of every state-changing
    input applied since — client updates, received payloads (already in
    [S]'s own wire encoding), and sends. A crash discards the volatile
    inner state; {!Make.recover} rebuilds it by decoding the checkpoint
    and replaying everything through a fresh [S.init] replica. Because
    stores are pure deterministic state machines, the rebuilt replica is
    observationally identical to the one that crashed.

    Reads are logged only for stores whose reads change state
    (Definition 16 violators such as {!Delayed_store}); for everyone else
    the log stays update-only. The log auto-compacts into the checkpoint
    every {!auto_checkpoint_every} entries, so recovery cost and snapshot
    size stay bounded by a constant factor of live state. *)

open Haec_wire
open Haec_model

let auto_checkpoint_every = 32

(* [Make_tuned] exposes the checkpoint cadence: [Some k] folds the WAL
   into the snapshot every [k] entries (the simulator default, [Make]);
   [None] never auto-checkpoints — each checkpoint re-encodes the whole
   replay history, which is fine at simulator scale but quadratic on the
   live hot path, where the caller checkpoints explicitly (or never:
   recovery replays the WAL from genesis, and live runs are short). *)
module Make_tuned (C : sig
  val auto_checkpoint_every : int option
end)
(S : Store_intf.S) : sig
  include Store_intf.DURABLE

  val inject : n:int -> me:int -> S.state -> state
  (** Wrap an existing inner state with an empty durable image — for tests
      that need a replica whose durable image is deliberately stale. *)

  val inner : state -> S.state
  (** The wrapped volatile state, read-only — for observation hooks such as
      {!Anti_entropy.Make.settled} that inspect the protocol layer under
      the durable image. *)

  val map_inner : (S.state -> S.state) -> state -> state
  (** Apply a function to the wrapped state {e without logging anything}.
      Only for inputs the inner protocol regenerates on its own (the
      anti-entropy gossip tick): a state change that influences the inner
      replica's logged-replay behavior must instead go through
      {!do_op}/{!receive}/{!send}, or recovery would not reproduce it. *)
end = struct
  type entry =
    | Apply of { obj : int; op : Op.t }
    | Deliver of { sender : int; payload : string }
    | Sent

  let encode_entry enc = function
    | Apply { obj; op } ->
      Wire.Encoder.uint enc 0;
      Wire.Encoder.uint enc obj;
      Op.encode enc op
    | Deliver { sender; payload } ->
      Wire.Encoder.uint enc 1;
      Wire.Encoder.uint enc sender;
      Wire.Encoder.string enc payload
    | Sent -> Wire.Encoder.uint enc 2

  let decode_entry dec =
    match Wire.Decoder.uint dec with
    | 0 ->
      let obj = Wire.Decoder.uint dec in
      let op = Op.decode dec in
      Apply { obj; op }
    | 1 ->
      let sender = Wire.Decoder.uint dec in
      let payload = Wire.Decoder.string dec in
      Deliver { sender; payload }
    | 2 -> Sent
    | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad log entry tag %d" tag))

  type state = {
    n : int;
    me : int;
    inner : S.state;  (** volatile: lost at a crash *)
    snapshot : string;  (** durable: encoded replay log at the last checkpoint *)
    wal_rev : entry list;  (** durable: entries since the checkpoint, newest first *)
    wal_len : int;
  }

  let name = "durable(" ^ S.name ^ ")"

  let invisible_reads = S.invisible_reads

  let op_driven = S.op_driven

  let empty_snapshot = Wire.encode (fun enc -> Wire.Encoder.list enc encode_entry [])

  let init ~n ~me =
    { n; me; inner = S.init ~n ~me; snapshot = empty_snapshot; wal_rev = []; wal_len = 0 }

  let inject ~n ~me inner =
    { n; me; inner; snapshot = empty_snapshot; wal_rev = []; wal_len = 0 }

  let inner t = t.inner

  let map_inner f t = { t with inner = f t.inner }

  let snapshot_entries t =
    Wire.decode t.snapshot (fun dec -> Wire.Decoder.list dec decode_entry)

  let checkpoint t =
    if t.wal_len = 0 then t
    else
      let all = snapshot_entries t @ List.rev t.wal_rev in
      {
        t with
        snapshot = Wire.encode (fun enc -> Wire.Encoder.list enc encode_entry all);
        wal_rev = [];
        wal_len = 0;
      }

  let log t e =
    let t = { t with wal_rev = e :: t.wal_rev; wal_len = t.wal_len + 1 } in
    match C.auto_checkpoint_every with
    | Some every when t.wal_len >= every -> checkpoint t
    | Some _ | None -> t

  let replay_entry inner = function
    | Apply { obj; op } ->
      let inner, _, _ = S.do_op inner ~obj op in
      inner
    | Deliver { sender; payload } -> S.receive inner ~sender payload
    | Sent -> if S.has_pending inner then fst (S.send inner) else inner

  let recover t =
    let inner = List.fold_left replay_entry (S.init ~n:t.n ~me:t.me) (snapshot_entries t) in
    let inner = List.fold_left replay_entry inner (List.rev t.wal_rev) in
    { t with inner }

  let wal_length t = t.wal_len

  let snapshot_bytes t = String.length t.snapshot

  let do_op t ~obj op =
    let inner, rval, witness = S.do_op t.inner ~obj op in
    let t = { t with inner } in
    let t =
      (* reads of invisible-read stores cannot change state: keep the log
         update-only *)
      if S.invisible_reads && Op.is_read op then t else log t (Apply { obj; op })
    in
    (t, rval, witness)

  let has_pending t = S.has_pending t.inner

  let send t =
    let inner, payload = S.send t.inner in
    (log { t with inner } Sent, payload)

  let receive t ~sender payload =
    (* a Malformed payload raises here, before anything reaches the log:
       garbage is rejected at the door and never becomes durable *)
    let inner = S.receive t.inner ~sender payload in
    log { t with inner } (Deliver { sender; payload })
end

module Make (S : Store_intf.S) =
  Make_tuned
    (struct
      let auto_checkpoint_every = Some auto_checkpoint_every
    end)
    (S)
