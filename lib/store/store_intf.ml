(** The data-store interface: one replica's state machine (Section 2).

    A store is a pure state machine. [do_op] handles a client operation
    without any communication (high availability); [send] serializes
    everything the replica wants to broadcast and clears the pending flag
    (the paper's "a send event relays everything the replica has to send");
    [receive] applies a (possibly duplicated, reordered) message.

    Beyond the paper's model, [do_op] also returns a {!witness}: the
    visibility information the replica itself used to answer, from which
    the simulator assembles a witness abstract execution that the run
    complies with by construction. This sidesteps the (NP-hard) search for
    a complying abstract execution on large runs; the witness is then fed
    to the correctness / causality / OCC / eventual-consistency checkers. *)

open Haec_model
open Haec_vclock

(** Instrumentation shared by delivery layers that buffer remote updates:
    how much work the buffer did, aggregated across every replica of the
    instantiated store module (the counters are module-global, not part of
    the pure per-replica state). The soak benchmark (E20) reads these to
    show how buffer cost scales with the number of buffered records. *)
type delivery_stats = {
  mutable scans : int;
      (** deliverability checks performed against buffered records *)
  mutable delivered : int;
      (** records handed to the object layer (or the hidden queue) *)
  mutable max_buffer : int;
      (** peak number of simultaneously buffered records at one replica *)
}

let fresh_delivery_stats () = { scans = 0; delivered = 0; max_buffer = 0 }

let copy_delivery_stats s =
  { scans = s.scans; delivered = s.delivered; max_buffer = s.max_buffer }

(** Instrumentation for the anti-entropy gossip layer ({!Anti_entropy}),
    aggregated across every replica of the instantiated store module, same
    module-global convention as {!delivery_stats}. Counts are per broadcast
    payload (the simulator fans one payload out to [n-1] peers); bytes are
    wire bytes of the encoded items inside those payloads, so the E21
    digest/repair traffic columns measure real encoded bytes. *)
type gossip_stats = {
  mutable digests : int;  (** digest items sent *)
  mutable digest_bytes : int;
  mutable repairs : int;  (** repair items sent (pushes and request answers) *)
  mutable repair_bytes : int;
  mutable requests : int;  (** repair-request items sent *)
  mutable request_bytes : int;
  mutable updates : int;  (** fresh update items sent *)
  mutable update_bytes : int;
  mutable dup_payloads : int;
      (** received update/repair payloads already logged (duplicates) *)
  mutable repair_applied : int;
      (** previously missing payloads obtained through a repair *)
  mutable memberships : int;  (** hello/goodbye membership items sent *)
  mutable membership_bytes : int;
  mutable digest_deltas : int;
      (** wire-v2 delta digests sent in place of full digests *)
  mutable digests_elided : int;
      (** gossip rounds whose digest was suppressed as redundant (v2) *)
}

let fresh_gossip_stats () =
  {
    digests = 0;
    digest_bytes = 0;
    repairs = 0;
    repair_bytes = 0;
    requests = 0;
    request_bytes = 0;
    updates = 0;
    update_bytes = 0;
    dup_payloads = 0;
    repair_applied = 0;
    memberships = 0;
    membership_bytes = 0;
    digest_deltas = 0;
    digests_elided = 0;
  }

let copy_gossip_stats s =
  {
    digests = s.digests;
    digest_bytes = s.digest_bytes;
    repairs = s.repairs;
    repair_bytes = s.repair_bytes;
    requests = s.requests;
    request_bytes = s.request_bytes;
    updates = s.updates;
    update_bytes = s.update_bytes;
    dup_payloads = s.dup_payloads;
    repair_applied = s.repair_applied;
    memberships = s.memberships;
    membership_bytes = s.membership_bytes;
    digest_deltas = s.digest_deltas;
    digests_elided = s.digests_elided;
  }

type witness = {
  visible : (int * Dot.t) list;
      (** [(obj, dot)] of every update visible to this operation. Dots are
          store-defined update identifiers, unique per object. *)
  self : Dot.t option;
      (** the dot this store assigned to the operation, if it is an update *)
}

let empty_witness = { visible = []; self = None }

module type S = sig
  type state

  val name : string

  val invisible_reads : bool
  (** Definition 16: client reads do not change the replica state. *)

  val op_driven : bool
  (** Definition 15: messages become pending only due to client operations,
      never merely from receiving a message. *)

  val init : n:int -> me:int -> state
  (** Initial state of replica [me] out of [n]. *)

  val do_op : state -> obj:int -> Op.t -> state * Op.response * witness Lazy.t
  (** The witness is lazy because enumerating visible dots is the most
      expensive part of an operation; large benchmark runs that do not
      check consistency never force it. *)

  val has_pending : state -> bool
  (** Whether a send event is enabled ("has a message pending"). *)

  val send : state -> state * string
  (** The pending broadcast payload, deterministic in the state; afterwards
      no message is pending. Raises [Invalid_argument] if none pending. *)

  val receive : state -> sender:int -> string -> state
end

(** A store that survives crashes: alongside the volatile replica state it
    maintains a durable image — a wire-encoded checkpoint plus a
    write-ahead log of everything applied since — from which {!recover}
    rebuilds the replica after a crash wipes its volatile memory. See
    {!Durable.Make}, which derives this for any store. *)
module type DURABLE = sig
  include S

  val checkpoint : state -> state
  (** Fold the write-ahead log into the serialized snapshot. Idempotent. *)

  val recover : state -> state
  (** The state after a crash: volatile memory is discarded and rebuilt by
      decoding the snapshot and replaying it plus every post-checkpoint
      log entry through a fresh replica. Raises
      [Haec_wire.Wire.Decoder.Malformed] if the durable image is corrupt. *)

  val wal_length : state -> int
  (** Number of log entries applied since the last checkpoint. *)

  val snapshot_bytes : state -> int
  (** Size of the serialized checkpoint, in bytes. *)
end
