(** Reference baseline for the delivery-buffer scaling experiment (E20).

    This is the original list-scan causal delivery layer, frozen and
    specialized to the MVR object layer: [receive] dedups each incoming
    record with [List.exists] over the whole buffer and appends with [@],
    and [drain] rescans the entire buffer after every single delivery.
    Both are Theta(B) per record with B buffered records — quadratic over
    a burst — which is exactly what the dependency-indexed buffer in
    {!Causal_core} replaces. Kept (and kept deliberately naive) so the
    before/after scan counts in E20 and the soak benchmark remain
    reproducible from the repo alone; never use it for anything else. *)

open Haec_wire
open Haec_vclock
module Obj = Object_layer.Mvr
module Int_map = Map.Make (Int)

let name = "mvr-causal-naive"

(* one counter record per domain: parallel sweeps (Haec_util.Par) must
   not race their instrumentation, and a reset/run/read sequence inside
   one task stays coherent because a task never migrates domains *)
let stats_key = Domain.DLS.new_key Store_intf.fresh_delivery_stats

let stats () = Domain.DLS.get stats_key

let delivery_stats () = Store_intf.copy_delivery_stats (stats ())

let reset_delivery_stats () =
  let stats = stats () in
  stats.Store_intf.scans <- 0;
  stats.Store_intf.delivered <- 0;
  stats.Store_intf.max_buffer <- 0

type update_record = {
  origin : int;
  useq : int;
  dep : Vclock.t;
  obj : int;
  u : Obj.update;
}

let encode_record enc r =
  Wire.Encoder.uint enc r.origin;
  Wire.Encoder.uint enc r.useq;
  Vclock.encode enc r.dep;
  Wire.Encoder.uint enc r.obj;
  Obj.encode_update enc r.u

let decode_record dec =
  let origin = Wire.Decoder.uint dec in
  let useq = Wire.Decoder.uint dec in
  let dep = Vclock.decode dec in
  let obj = Wire.Decoder.uint dec in
  let u = Obj.decode_update dec in
  { origin; useq; dep; obj; u }

type state = {
  n : int;
  me : int;
  clock : int;
  uv : Vclock.t;
  objects : Obj.t Int_map.t;
  pending : update_record list;  (** newest first *)
  buffer : update_record list;
}

let invisible_reads = true

let op_driven = true

let init ~n ~me =
  { n; me; clock = 0; uv = Vclock.zero ~n; objects = Int_map.empty; pending = []; buffer = [] }

let obj_state t obj =
  match Int_map.find_opt obj t.objects with Some o -> o | None -> Obj.empty ~n:t.n

let apply_remote o u =
  try Obj.apply o u
  with Invalid_argument m -> raise (Wire.Decoder.Malformed ("invalid update: " ^ m))

let expose t r =
  { t with objects = Int_map.add r.obj (apply_remote (obj_state t r.obj) r.u) t.objects }

let deliverable t r =
  let stats = stats () in
  stats.Store_intf.scans <- stats.Store_intf.scans + 1;
  Vclock.get t.uv r.origin = r.useq - 1 && Vclock.leq r.dep t.uv

let deliver t r =
  let stats = stats () in
  stats.Store_intf.delivered <- stats.Store_intf.delivered + 1;
  let t =
    { t with uv = Vclock.tick t.uv r.origin; clock = max t.clock (Obj.time_of r.u) }
  in
  expose t r

let rec drain t =
  let rec pick acc = function
    | [] -> None
    | r :: rest ->
      if deliverable t r then Some (r, List.rev_append acc rest) else pick (r :: acc) rest
  in
  match pick [] t.buffer with
  | None -> t
  | Some (r, buffer) -> drain (deliver { t with buffer } r)

let visible_now t =
  Int_map.fold
    (fun obj o acc ->
      List.fold_left (fun acc d -> (obj, d) :: acc) acc (Obj.visible_dots o))
    t.objects []

let do_op t ~obj op =
  let visible_before = lazy (visible_now t) in
  let now = t.clock + 1 in
  let o, rval, update = Obj.do_op (obj_state t obj) ~me:t.me ~now op in
  match update with
  | None ->
    let witness = lazy { Store_intf.visible = Lazy.force visible_before; self = None } in
    ({ t with objects = Int_map.add obj o t.objects }, rval, witness)
  | Some u ->
    let r = { origin = t.me; useq = Vclock.get t.uv t.me + 1; dep = t.uv; obj; u } in
    let t =
      {
        t with
        clock = now;
        uv = Vclock.tick t.uv t.me;
        objects = Int_map.add obj o t.objects;
        pending = r :: t.pending;
      }
    in
    let witness =
      lazy { Store_intf.visible = Lazy.force visible_before; self = Some (Obj.dot_of u) }
    in
    (t, rval, witness)

let has_pending t = t.pending <> []

let send t =
  if not (has_pending t) then invalid_arg (name ^ ".send: nothing pending");
  let payload =
    Wire.encode (fun enc -> Wire.Encoder.list enc encode_record (List.rev t.pending))
  in
  ({ t with pending = [] }, payload)

let receive t ~sender:_ payload =
  let records = Wire.decode payload (fun dec -> Wire.Decoder.list dec decode_record) in
  List.iter
    (fun r ->
      if r.origin < 0 || r.origin >= t.n then
        raise (Wire.Decoder.Malformed (Printf.sprintf "origin %d out of range" r.origin));
      if Vclock.size r.dep <> t.n then
        raise
          (Wire.Decoder.Malformed
             (Printf.sprintf "dependency vector has %d entries, expected %d"
                (Vclock.size r.dep) t.n));
      if r.useq < 1 then raise (Wire.Decoder.Malformed "non-positive update sequence"))
    records;
  let fresh r =
    r.useq > Vclock.get t.uv r.origin
    && not (List.exists (fun b -> b.origin = r.origin && b.useq = r.useq) t.buffer)
  in
  let t = { t with buffer = t.buffer @ List.filter fresh records } in
  let stats = stats () in
  stats.Store_intf.max_buffer <- max stats.Store_intf.max_buffer (List.length t.buffer);
  drain t
