(** Causal-broadcast delivery layer, generic over the object layer and an
    exposure policy.

    Delivery: every local update gets a per-replica sequence number and
    carries its dependency vector (the origin's update-vector at creation
    time), in the style of Ahamad et al.'s causal memory — this is the
    baseline whose Theta(n lg k)-bit messages Section 6 of the paper
    compares against. Received updates are buffered until their
    dependencies are satisfied, so the store complies with a causally
    consistent abstract execution under *any* network behaviour.

    The buffer is dependency-indexed rather than a scanned list: records
    are keyed by [(origin, useq)], and a record whose preconditions fail
    is parked under the {e first} precondition it is missing — the pair
    [(origin', seq')] meaning "wake me when the update-vector entry for
    [origin'] reaches [seq']". Delivering one update advances exactly one
    update-vector entry by one, so it wakes exactly the records parked
    under that new value; each woken record is re-checked and either
    delivered (cascading further wakeups) or re-parked under its next
    missing precondition. A record is therefore re-examined once per
    precondition that becomes true, not once per delivery — near-linear
    where the old full-rescan [drain] was quadratic over a buffered burst.
    All index structures are persistent maps: store states are pure
    values, and callers (tests, benchmarks, the delayed-read experiments)
    do reuse old states after deriving new ones.

    The exposure policy reproduces the Section 5.3 counter-example: with
    [expose_after_reads = 0] updates reach the object layer immediately and
    reads are invisible (the plain causally consistent store); with [K > 0]
    a delivered remote update is hidden until [K] further local reads have
    executed, which makes reads state-changing — deliberately violating
    Definition 16 and thereby escaping Theorem 6. *)

open Haec_wire
open Haec_vclock
open Haec_model
module Int_map = Map.Make (Int)
module Fqueue = Haec_util.Fqueue

module type POLICY = sig
  val name : string

  val expose_after_reads : int
end

module Immediate = struct
  let expose_after_reads = 0
end

module Make (Obj : Object_layer.OBJECT) (P : POLICY) = struct
  (* one counter record per domain: parallel sweeps (Haec_util.Par) must
     not race their instrumentation, and a reset/run/read sequence inside
     one task stays coherent because a task never migrates domains *)
  let stats_key = Domain.DLS.new_key Store_intf.fresh_delivery_stats

  let stats () = Domain.DLS.get stats_key

  let delivery_stats () = Store_intf.copy_delivery_stats (stats ())

  let reset_delivery_stats () =
    let stats = stats () in
    stats.Store_intf.scans <- 0;
    stats.Store_intf.delivered <- 0;
    stats.Store_intf.max_buffer <- 0

  type update_record = {
    origin : int;
    useq : int;  (** per-origin update sequence number, from 1 *)
    dep : Vclock.t;  (** origin's update-vector just before this update *)
    obj : int;
    u : Obj.update;
  }

  (* Batch framing: the first record carries its dependency vector
     absolutely, every later one as entrywise deltas against its
     predecessor's. Deps within one origin's batch are componentwise
     non-decreasing (the update-vector only grows between local updates),
     so the deltas are non-negative and mostly zero — one varint byte per
     entry instead of up to five. The reference point is always inside
     the same message, so loss, duplication, and reordering of whole
     messages cannot desynchronize the codec. *)
  let encode_batch enc records =
    (* wire v2 compresses both legs of the dependency framing: the
       absolute head clock via the packed/run-length chooser and each
       later delta sparsely (only changed entries); decode accepts either
       form via the marker byte, so the batch stays self-describing *)
    let v2 = Wire.Version.current () = Wire.Version.V2 in
    Wire.Encoder.uint enc (List.length records);
    let prev = ref None in
    List.iter
      (fun r ->
        Wire.Encoder.uint enc r.origin;
        Wire.Encoder.uint enc r.useq;
        (match !prev with
        | None -> if v2 then Vclock.encode_c enc r.dep else Vclock.encode enc r.dep
        | Some p ->
          if v2 then Vclock.encode_delta_c enc ~prev:p r.dep
          else Vclock.encode_delta enc ~prev:p r.dep);
        prev := Some r.dep;
        Wire.Encoder.uint enc r.obj;
        Obj.encode_update enc r.u)
      records

  let decode_batch dec =
    let len = Wire.Decoder.uint dec in
    let rec go n prev acc =
      if n = 0 then List.rev acc
      else begin
        let origin = Wire.Decoder.uint dec in
        let useq = Wire.Decoder.uint dec in
        let dep =
          match prev with
          | None -> Vclock.decode_any dec
          | Some p -> Vclock.decode_delta_any dec ~prev:p
        in
        let obj = Wire.Decoder.uint dec in
        let u = Obj.decode_update dec in
        go (n - 1) (Some dep) ({ origin; useq; dep; obj; u } :: acc)
      end
    in
    go len None []

  type state = {
    n : int;
    me : int;
    clock : int;  (** witnesses the time of every applied update *)
    uv : Vclock.t;  (** update-vector: applied updates per origin *)
    objects : Obj.t Int_map.t;
    pending : update_record list;  (** local updates not yet broadcast, newest first *)
    buffer : update_record Int_map.t Int_map.t;
        (** remote updates awaiting dependencies, keyed origin -> useq *)
    buffered : int;  (** number of records in [buffer] *)
    waiting : (int * int) list Int_map.t Int_map.t;
        (** wakeup index: [waiting.(o).(s)] holds the [(origin, useq)] keys
            of buffered records parked until the update-vector entry for
            [o] reaches [s]; each buffered record sits in at most one
            bucket *)
    reads : int;  (** local reads executed, drives hidden-update exposure *)
    hidden : (update_record * int) Fqueue.t;
        (** delivered but unexposed updates in delivery order, each with
            the [reads] value at which it ripens *)
  }

  let name = P.name

  let invisible_reads = P.expose_after_reads = 0

  let op_driven = true

  let init ~n ~me =
    {
      n;
      me;
      clock = 0;
      uv = Vclock.zero ~n;
      objects = Int_map.empty;
      pending = [];
      buffer = Int_map.empty;
      buffered = 0;
      waiting = Int_map.empty;
      reads = 0;
      hidden = Fqueue.empty;
    }

  let obj_state t obj =
    match Int_map.find_opt obj t.objects with Some o -> o | None -> Obj.empty ~n:t.n

  let apply_remote o u =
    try Obj.apply o u
    with Invalid_argument m -> raise (Wire.Decoder.Malformed ("invalid update: " ^ m))

  let expose t r =
    { t with objects = Int_map.add r.obj (apply_remote (obj_state t r.obj) r.u) t.objects }

  (* ---- buffer index plumbing ---- *)

  let find_rec buffer o s =
    match Int_map.find_opt o buffer with None -> None | Some m -> Int_map.find_opt s m

  let mem_rec buffer o s = find_rec buffer o s <> None

  let add_rec buffer r =
    let m =
      match Int_map.find_opt r.origin buffer with Some m -> m | None -> Int_map.empty
    in
    Int_map.add r.origin (Int_map.add r.useq r m) buffer

  let remove_rec buffer o s =
    match Int_map.find_opt o buffer with
    | None -> buffer
    | Some m ->
      let m = Int_map.remove s m in
      if Int_map.is_empty m then Int_map.remove o buffer else Int_map.add o m buffer

  let add_wait w ~blocker:(bo, bs) key =
    let seqs = match Int_map.find_opt bo w with Some s -> s | None -> Int_map.empty in
    let keys = match Int_map.find_opt bs seqs with Some k -> k | None -> [] in
    Int_map.add bo (Int_map.add bs (key :: keys) seqs) w

  (* remove and return the whole bucket parked on [(bo, bs)] *)
  let pop_wait w ~blocker:(bo, bs) =
    match Int_map.find_opt bo w with
    | None -> ([], w)
    | Some seqs -> (
      match Int_map.find_opt bs seqs with
      | None -> ([], w)
      | Some keys ->
        let seqs = Int_map.remove bs seqs in
        let w =
          if Int_map.is_empty seqs then Int_map.remove bo w else Int_map.add bo seqs w
        in
        (keys, w))

  (* The first precondition of [r] not satisfied by [uv], as the
     [(origin, seq)] the update-vector must reach, or [None] when [r] is
     deliverable. One call is the indexed analogue of one full
     deliverability scan of the old list buffer, so it carries the
     [scans] accounting the E20 experiment compares. *)
  let blocker uv r =
    let stats = stats () in
    stats.Store_intf.scans <- stats.Store_intf.scans + 1;
    if Vclock.get uv r.origin < r.useq - 1 then Some (r.origin, r.useq - 1)
    else begin
      let n = Vclock.size uv in
      let rec go j =
        if j >= n then None
        else
          let need = Vclock.get r.dep j in
          if need > Vclock.get uv j then Some (j, need) else go (j + 1)
      in
      go 0
    end

  let visible_now t =
    Int_map.fold
      (fun obj o acc ->
        List.fold_left (fun acc d -> (obj, d) :: acc) acc (Obj.visible_dots o))
      t.objects []

  (* A local read advances the read counter and exposes the ripe prefix
     of the hidden queue, in delivery order. Ripen thresholds are
     non-decreasing along the queue (the countdown [K] is a constant), so
     the ripe entries are exactly a prefix. *)
  let tick_hidden t =
    let reads = t.reads + 1 in
    let rec expose_ready t =
      match Fqueue.pop t.hidden with
      | Some ((r, at), rest) when at <= reads -> expose_ready (expose { t with hidden = rest } r)
      | _ -> t
    in
    expose_ready { t with reads }

  let do_op t ~obj op =
    let t = if Op.is_read op && P.expose_after_reads > 0 then tick_hidden t else t in
    let visible_before = lazy (visible_now t) in
    let now = t.clock + 1 in
    let o, rval, update = Obj.do_op (obj_state t obj) ~me:t.me ~now op in
    match update with
    | None ->
      let witness = lazy { Store_intf.visible = Lazy.force visible_before; self = None } in
      ({ t with objects = Int_map.add obj o t.objects }, rval, witness)
    | Some u ->
      let r = { origin = t.me; useq = Vclock.get t.uv t.me + 1; dep = t.uv; obj; u } in
      let t =
        {
          t with
          clock = now;
          uv = Vclock.tick t.uv t.me;
          objects = Int_map.add obj o t.objects;
          pending = r :: t.pending;
        }
      in
      let witness =
        lazy { Store_intf.visible = Lazy.force visible_before; self = Some (Obj.dot_of u) }
      in
      (t, rval, witness)

  let has_pending t = t.pending <> []

  let send t =
    if not (has_pending t) then invalid_arg (P.name ^ ".send: nothing pending");
    let payload = Wire.encode (fun enc -> encode_batch enc (List.rev t.pending)) in
    ({ t with pending = [] }, payload)

  let receive t ~sender:_ payload =
    let records = Wire.decode payload decode_batch in
    (* structural validation beyond parsing: origins and vector sizes must
       fit this deployment, or buffering/merging would fail later *)
    List.iter
      (fun r ->
        if r.origin < 0 || r.origin >= t.n then
          raise (Wire.Decoder.Malformed (Printf.sprintf "origin %d out of range" r.origin));
        if Vclock.size r.dep <> t.n then
          raise
            (Wire.Decoder.Malformed
               (Printf.sprintf "dependency vector has %d entries, expected %d"
                  (Vclock.size r.dep) t.n));
        if r.useq < 1 then raise (Wire.Decoder.Malformed "non-positive update sequence"))
      records;
    let fresh r =
      r.useq > Vclock.get t.uv r.origin && not (mem_rec t.buffer r.origin r.useq)
    in
    match List.filter fresh records with
    | [] -> t
    | fresh_records ->
      (* The whole receive cascade works on one uniquely-owned copy of the
         update-vector, ticked in place per delivery; the original [t.uv]
         (aliased as [dep] by earlier local updates) is never mutated. *)
      let uv = Vclock.copy t.uv in
      let buffer = ref t.buffer in
      let buffered = ref t.buffered in
      let waiting = ref t.waiting in
      let objects = ref t.objects in
      let hidden = ref t.hidden in
      let clock = ref t.clock in
      List.iter
        (fun r ->
          buffer := add_rec !buffer r;
          incr buffered)
        fresh_records;
      let stats = stats () in
      stats.Store_intf.max_buffer <- max stats.Store_intf.max_buffer !buffered;
      let work = Queue.create () in
      List.iter (fun r -> Queue.add (r.origin, r.useq) work) fresh_records;
      while not (Queue.is_empty work) do
        let o, s = Queue.pop work in
        match find_rec !buffer o s with
        | None -> () (* already delivered in this cascade *)
        | Some r ->
          if Vclock.get uv r.origin >= r.useq then begin
            (* duplicate of an already-applied update *)
            buffer := remove_rec !buffer o s;
            decr buffered
          end
          else begin
            match blocker uv r with
            | Some b -> waiting := add_wait !waiting ~blocker:b (o, s)
            | None ->
              buffer := remove_rec !buffer o s;
              decr buffered;
              stats.Store_intf.delivered <- stats.Store_intf.delivered + 1;
              Vclock.tick_into uv r.origin;
              clock := max !clock (Obj.time_of r.u);
              if P.expose_after_reads = 0 then
                objects :=
                  Int_map.add r.obj
                    (apply_remote
                       (match Int_map.find_opt r.obj !objects with
                       | Some o -> o
                       | None -> Obj.empty ~n:t.n)
                       r.u)
                    !objects
              else hidden := Fqueue.push !hidden (r, t.reads + P.expose_after_reads);
              (* this delivery advanced exactly one update-vector entry:
                 wake exactly the records parked on its new value *)
              let keys, w = pop_wait !waiting ~blocker:(r.origin, Vclock.get uv r.origin) in
              waiting := w;
              List.iter (fun k -> Queue.add k work) keys
          end
      done;
      {
        t with
        uv;
        clock = !clock;
        objects = !objects;
        buffer = !buffer;
        buffered = !buffered;
        waiting = !waiting;
        hidden = !hidden;
      }
end
