open Haec_wire
open Haec_vclock
open Haec_model
module Int_map = Map.Make (Int)
module Dot_map = Map.Make (Dot)

(* Global update identifiers: (replica, per-replica update counter),
   distinct from the MVR object layer's per-object dots. *)
type update_record = {
  dot : Dot.t;  (** global id of this update *)
  obj : int;
  u : Mvr_object.update;
  deps : Dot.Set.t;  (** nearest dependencies (global dots) *)
}

(* A v1 batch is a record list, so it starts with a count >= 1 ([send]
   refuses an empty pending queue). A v2 batch prepends the marker
   [0x00, 2] and compresses each record's dependency set; the update's
   clocks compress through {!Mvr_object.encode_update} under either
   version. Decoding dispatches on the leading byte, so either side can
   read either batch. *)

let encode_record enc r =
  Dot.encode enc r.dot;
  Wire.Encoder.uint enc r.obj;
  Mvr_object.encode_update enc r.u;
  Dot.encode_set enc r.deps

let encode_record_v2 enc r =
  Dot.encode enc r.dot;
  Wire.Encoder.uint enc r.obj;
  Mvr_object.encode_update enc r.u;
  Dot.encode_set_c enc r.deps

let decode_record ~v2 dec =
  let dot = Dot.decode dec in
  let obj = Wire.Decoder.uint dec in
  let u = Mvr_object.decode_update dec in
  let deps = if v2 then Dot.decode_set_any dec else Dot.decode_set dec in
  { dot; obj; u; deps }

type state = {
  n : int;
  me : int;
  next_seq : int;
  applied : Dot.Set.t;  (** global dots of applied updates (incl. own) *)
  ctx : Dot.Set.t;  (** the dependency frontier: applied updates not yet
                        subsumed by a later applied update's deps *)
  objects : Mvr_object.t Int_map.t;
  pending : update_record list;  (** newest first *)
  buffer : update_record Dot_map.t;
      (** remote updates awaiting dependencies, keyed by their global dot *)
  waiting : Dot.t list Dot_map.t;
      (** wakeup index: [waiting.(d)] holds the dots of buffered records
          parked until dependency [d] is applied; each buffered record
          sits in at most one bucket *)
}

let name = "mvr-cops-deps"

let invisible_reads = true

let op_driven = true

let init ~n ~me =
  {
    n;
    me;
    next_seq = 1;
    applied = Dot.Set.empty;
    ctx = Dot.Set.empty;
    objects = Int_map.empty;
    pending = [];
    buffer = Dot_map.empty;
    waiting = Dot_map.empty;
  }

let obj_state t obj =
  match Int_map.find_opt obj t.objects with
  | Some o -> o
  | None -> Mvr_object.empty ~n:t.n

let visible_now t =
  Int_map.fold
    (fun obj o acc ->
      List.fold_left (fun acc d -> (obj, d) :: acc) acc (Mvr_object.visible_dots o))
    t.objects []

(* Apply an update to the object layer and fold it into the dependency
   frontier: the update subsumes its own dependencies, so they leave the
   context. Keeping only the frontier is what makes dependency lists
   short — on the Theorem 12 workload, exactly one dot per writer. *)
let apply_obj t r =
  {
    t with
    applied = Dot.Set.add r.dot t.applied;
    ctx = Dot.Set.add r.dot (Dot.Set.diff t.ctx r.deps);
    objects = Int_map.add r.obj (Mvr_object.apply (obj_state t r.obj) r.u) t.objects;
  }

(* some dependency not yet applied, or [None] when deliverable *)
let missing_dep t deps =
  Dot.Set.fold
    (fun d acc ->
      match acc with
      | Some _ -> acc
      | None -> if Dot.Set.mem d t.applied then None else Some d)
    deps None

(* Process newly buffered records: each is either applied — waking the
   records parked on its dot — or parked under one still-missing
   dependency. A record is re-examined once per dependency that becomes
   satisfied instead of once per scan of the whole buffer. *)
let drain_from t dots =
  let st = ref t in
  let work = Queue.create () in
  List.iter (fun d -> Queue.add d work) dots;
  while not (Queue.is_empty work) do
    let dot = Queue.pop work in
    match Dot_map.find_opt dot !st.buffer with
    | None -> ()
    | Some r -> (
      if Dot.Set.mem r.dot !st.applied then
        st := { !st with buffer = Dot_map.remove dot !st.buffer }
      else
        match missing_dep !st r.deps with
        | Some d ->
          let bucket =
            match Dot_map.find_opt d !st.waiting with Some b -> b | None -> []
          in
          st := { !st with waiting = Dot_map.add d (r.dot :: bucket) !st.waiting }
        | None ->
          st := apply_obj { !st with buffer = Dot_map.remove dot !st.buffer } r;
          (match Dot_map.find_opt r.dot !st.waiting with
          | None -> ()
          | Some woken ->
            st := { !st with waiting = Dot_map.remove r.dot !st.waiting };
            List.iter (fun d -> Queue.add d work) woken))
  done;
  !st

let do_op t ~obj op =
  match op with
  | Op.Read ->
    (* reads change nothing (invisible reads): the dependency context
       already covers everything applied, folded in by [apply_obj] *)
    let o = obj_state t obj in
    let witness = lazy { Store_intf.visible = visible_now t; self = None } in
    (t, Op.vals (Mvr_object.read o), witness)
  | Op.Write v ->
    let visible_before = lazy (visible_now t) in
    let o, u = Mvr_object.local_write (obj_state t obj) ~me:t.me v in
    let dot = Dot.make ~replica:t.me ~seq:t.next_seq in
    let r = { dot; obj; u; deps = t.ctx } in
    let t = { t with next_seq = t.next_seq + 1; pending = r :: t.pending } in
    (* apply_obj folds the write into the frontier: its deps (the whole
       previous context) leave, the new dot enters *)
    let t = apply_obj { t with objects = Int_map.add obj o t.objects } r in
    let witness =
      lazy { Store_intf.visible = Lazy.force visible_before; self = Some u.Mvr_object.dot }
    in
    (t, Op.Ok, witness)
  | Op.Add _ | Op.Remove _ -> invalid_arg "Cops_store: only read/write supported"

let has_pending t = t.pending <> []

let send t =
  if not (has_pending t) then invalid_arg "Cops_store.send: nothing pending";
  let payload =
    Wire.encode (fun enc ->
        let records = List.rev t.pending in
        (* the marked batch costs 2 bytes up front and compresses only
           the dependency sets (the update's clocks compress under either
           layout), so emit it exactly when the sets pay for the marker *)
        let saves =
          Wire.Version.current () = Wire.Version.V2
          && List.fold_left (fun a r -> a + Dot.set_c_delta r.deps) 2 records < 0
        in
        if not saves then Wire.Encoder.list enc encode_record records
        else begin
          Wire.Encoder.uint enc 0;
          Wire.Encoder.uint enc 2;
          Wire.Encoder.list enc encode_record_v2 records
        end)
  in
  ({ t with pending = [] }, payload)

let receive t ~sender:_ payload =
  let records =
    Wire.decode payload (fun dec ->
        if Wire.Decoder.peek dec <> 0 then
          Wire.Decoder.list dec (decode_record ~v2:false)
        else begin
          ignore (Wire.Decoder.uint dec);
          (match Wire.Decoder.uint dec with
          | 2 -> ()
          | v ->
            raise
              (Wire.Decoder.Malformed (Printf.sprintf "unknown batch version %d" v)));
          Wire.Decoder.list dec (decode_record ~v2:true)
        end)
  in
  List.iter
    (fun r ->
      if r.dot.Dot.replica < 0 || r.dot.Dot.replica >= t.n then
        raise (Wire.Decoder.Malformed "update origin out of range"))
    records;
  let fresh r = (not (Dot.Set.mem r.dot t.applied)) && not (Dot_map.mem r.dot t.buffer) in
  let fresh_records = List.filter fresh records in
  let buffer =
    List.fold_left (fun b r -> Dot_map.add r.dot r b) t.buffer fresh_records
  in
  drain_from { t with buffer } (List.map (fun r -> r.dot) fresh_records)
