(** Object layers: the per-object replicated data type, independent of the
    delivery discipline. A store is the product of an object layer (MVR,
    LWW register, op-based counter, ...) and a delivery layer (eager
    {!Eager_core} or causally buffered {!Causal_core}).

    Invariant required of [visible_dots]: under causally ordered
    application of updates, the set is exactly the update events whose
    effects (including being causally overwritten) the replica has
    incorporated — the per-object visibility witness. *)

open Haec_wire
open Haec_vclock
open Haec_model
module Int_map = Map.Make (Int)

(* Shared by the dot-generating object layers: the highest sequence number
   seen per replica, maintained incrementally so [next_seq] is a lookup
   instead of a fold over every dot ever observed (which made each update
   op O(|seen|) and a long run quadratic). The cache is advanced at every
   dot insertion, so it stays exact under duplicated and replayed
   deliveries. *)
let bump_max (d : Dot.t) m =
  let cur = match Int_map.find_opt d.Dot.replica m with Some s -> s | None -> 0 in
  if d.Dot.seq > cur then Int_map.add d.Dot.replica d.Dot.seq m else m

let max_seq m me = match Int_map.find_opt me m with Some s -> s | None -> 0

module type OBJECT = sig
  val kind : string

  type t
  (** per-object replica state *)

  type update
  (** the propagated effect of one update operation *)

  val empty : n:int -> t

  val do_op : t -> me:int -> now:int -> Op.t -> t * Op.response * update option
  (** Handle one client operation locally. [now] is a causally monotone
      logical time supplied by the delivery layer (strictly greater than
      the time of every update already applied at this replica, across all
      objects); object layers that arbitrate conflicts by timestamp must
      use it, or cross-object causal chains can contradict their
      arbitration order (a cyclic conflict order — caught by
      [Haec_consistency.Causal_hist]). Returns [Some update] exactly when
      the operation is an update (to be broadcast). Raises
      [Invalid_argument] on operations outside the object's vocabulary. *)

  val apply : t -> update -> t
  (** Apply a remote update. Must be idempotent and insensitive to
      duplicated delivery. Ordering guarantees depend on the delivery
      layer. *)

  val dot_of : update -> Dot.t
  (** Unique per-object identifier of the update: [(origin, seq)] with
      [seq] contiguous per origin. *)

  val time_of : update -> int
  (** The logical time embedded in the update, for the delivery layer's
      clock to witness (Lamport's receive rule); 0 for layers that carry
      no timestamps. *)

  val visible_dots : t -> Dot.t list

  val encode_update : Wire.Encoder.t -> update -> unit

  val decode_update : Wire.Decoder.t -> update
end

(** Figure 1b: the multi-valued register, wrapping {!Mvr_object}. *)
module Mvr : OBJECT = struct
  let kind = "mvr"

  type t = Mvr_object.t

  type update = Mvr_object.update

  let empty = Mvr_object.empty

  let do_op t ~me ~now:_ op =
    match op with
    | Op.Read -> (t, Op.vals (Mvr_object.read t), None)
    | Op.Write v ->
      let t, u = Mvr_object.local_write t ~me v in
      (t, Op.Ok, Some u)
    | Op.Add _ | Op.Remove _ -> invalid_arg "Mvr object: only read/write supported"

  let apply = Mvr_object.apply

  let dot_of (u : update) = u.Mvr_object.dot

  let time_of _ = 0

  let visible_dots = Mvr_object.visible_dots

  let encode_update = Mvr_object.encode_update

  let decode_update = Mvr_object.decode_update
end

(** Figure 1a under a deterministic total order: the last-writer-wins
    register. Conflicts between concurrent writes are resolved by Lamport
    timestamp (ties by replica id), so a read returns at most one value. *)
module Lww_register : OBJECT = struct
  let kind = "lww-register"

  type entry = {
    ts : Lamport.t;
    dot : Dot.t;
    value : Value.t;
  }

  type t = {
    n : int;
    current : entry option;
    seen : Dot.Set.t;
    maxes : int Int_map.t;  (** per-replica max seq in [seen] *)
  }

  type update = entry

  let empty ~n = { n; current = None; seen = Dot.Set.empty; maxes = Int_map.empty }

  let next_seq t me = max_seq t.maxes me + 1

  let better a b = if Lamport.compare a.ts b.ts >= 0 then a else b

  let apply t e =
    if Dot.Set.mem e.dot t.seen then t
    else
      {
        t with
        current = (match t.current with None -> Some e | Some c -> Some (better c e));
        seen = Dot.Set.add e.dot t.seen;
        maxes = bump_max e.dot t.maxes;
      }

  let do_op t ~me ~now op =
    match op with
    | Op.Read ->
      ignore now;
      let vals = match t.current with None -> [] | Some e -> [ e.value ] in
      (t, Op.vals vals, None)
    | Op.Write v ->
      (* [now] already dominates every applied update's time, including
         this object's current winner *)
      let ts = { Lamport.time = now; replica = me } in
      let e = { ts; dot = Dot.make ~replica:me ~seq:(next_seq t me); value = v } in
      (apply t e, Op.Ok, Some e)
    | Op.Add _ | Op.Remove _ -> invalid_arg "Lww_register object: only read/write supported"

  let dot_of e = e.dot

  let time_of e = e.ts.Lamport.time

  let visible_dots t = Dot.Set.elements t.seen

  let encode_update enc e =
    Lamport.encode enc e.ts;
    Dot.encode enc e.dot;
    Value.encode enc e.value

  let decode_update dec =
    let ts = Lamport.decode dec in
    let dot = Dot.decode dec in
    let value = Value.decode dec in
    { ts; dot; value }
end

(** Figure 1c: the observed-remove set. Add-wins semantics: each [add]
    gets a unique dot; a [remove] deletes exactly the add-dots its replica
    had observed, so an add concurrent with a remove of the same value
    survives. Tombstones guard against an add arriving after a remove that
    already covered it. The [known] dot set (including adds known only
    through a remove's observed set) is the visibility witness. *)
module Orset : OBJECT = struct
  let kind = "orset"

  type update =
    | Uadd of { dot : Dot.t; value : Value.t }
    | Uremove of { dot : Dot.t; removed : Dot.Set.t }

  type t = {
    n : int;
    entries : (Dot.t * Value.t) list;  (** live add-dots *)
    tombstones : Dot.Set.t;  (** add-dots covered by some applied remove *)
    known : Dot.Set.t;
    maxes : int Int_map.t;  (** per-replica max seq in [known] *)
  }

  let empty ~n =
    {
      n;
      entries = [];
      tombstones = Dot.Set.empty;
      known = Dot.Set.empty;
      maxes = Int_map.empty;
    }

  let next_seq t me = max_seq t.maxes me + 1

  let apply t = function
    | Uadd { dot; value } ->
      if Dot.Set.mem dot t.known then t
      else
        {
          t with
          entries = (dot, value) :: t.entries;
          known = Dot.Set.add dot t.known;
          maxes = bump_max dot t.maxes;
        }
    | Uremove { dot; removed } ->
      if Dot.Set.mem dot t.known then t
      else
        {
          t with
          entries = List.filter (fun (d, _) -> not (Dot.Set.mem d removed)) t.entries;
          tombstones = Dot.Set.union t.tombstones removed;
          known = Dot.Set.add dot (Dot.Set.union t.known removed);
          maxes = Dot.Set.fold bump_max removed (bump_max dot t.maxes);
        }

  let do_op t ~me ~now:_ op =
    match op with
    | Op.Read -> (t, Op.vals (List.map snd t.entries), None)
    | Op.Add v ->
      let u = Uadd { dot = Dot.make ~replica:me ~seq:(next_seq t me); value = v } in
      (apply t u, Op.Ok, Some u)
    | Op.Remove v ->
      let removed =
        List.fold_left
          (fun acc (d, value) -> if Value.equal value v then Dot.Set.add d acc else acc)
          Dot.Set.empty t.entries
      in
      let u = Uremove { dot = Dot.make ~replica:me ~seq:(next_seq t me); removed } in
      (apply t u, Op.Ok, Some u)
    | Op.Write _ -> invalid_arg "Orset object: only read/add/remove supported"

  let dot_of = function Uadd { dot; _ } | Uremove { dot; _ } -> dot

  let time_of _ = 0

  let visible_dots t = Dot.Set.elements t.known

  let encode_update enc = function
    | Uadd { dot; value } ->
      Wire.Encoder.uint enc 0;
      Dot.encode enc dot;
      Value.encode enc value
    | Uremove { dot; removed } ->
      Wire.Encoder.uint enc 1;
      Dot.encode enc dot;
      Dot.encode_set enc removed

  let decode_update dec =
    match Wire.Decoder.uint dec with
    | 0 ->
      let dot = Dot.decode dec in
      let value = Value.decode dec in
      Uadd { dot; value }
    | 1 ->
      let dot = Dot.decode dec in
      let removed = Dot.decode_set dec in
      Uremove { dot; removed }
    | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad orset update tag %d" tag))
end

(** An op-based PN-counter: [Add _] increments, [Remove _] decrements, a
    read returns the total — matching the counter specification in
    [Haec_spec.Spec]. Extension beyond Figure 1 exercising a commutative,
    conflict-free object in the same framework. *)
module Pn_counter : OBJECT = struct
  let kind = "pn-counter"

  type update = {
    dot : Dot.t;
    delta : int;
  }

  type t = {
    n : int;
    total : int;
    seen : Dot.Set.t;
    maxes : int Int_map.t;  (** per-replica max seq in [seen] *)
  }

  let empty ~n = { n; total = 0; seen = Dot.Set.empty; maxes = Int_map.empty }

  let next_seq t me = max_seq t.maxes me + 1

  let apply t u =
    if Dot.Set.mem u.dot t.seen then t
    else
      {
        t with
        total = t.total + u.delta;
        seen = Dot.Set.add u.dot t.seen;
        maxes = bump_max u.dot t.maxes;
      }

  let do_op t ~me ~now:_ op =
    match op with
    | Op.Read -> (t, Op.vals [ Value.Int t.total ], None)
    | Op.Add _ ->
      let u = { dot = Dot.make ~replica:me ~seq:(next_seq t me); delta = 1 } in
      (apply t u, Op.Ok, Some u)
    | Op.Remove _ ->
      let u = { dot = Dot.make ~replica:me ~seq:(next_seq t me); delta = -1 } in
      (apply t u, Op.Ok, Some u)
    | Op.Write _ -> invalid_arg "Pn_counter object: only read/add/remove supported"

  let dot_of u = u.dot

  let time_of _ = 0

  let visible_dots t = Dot.Set.elements t.seen

  let encode_update enc u =
    Dot.encode enc u.dot;
    Wire.Encoder.int enc u.delta

  let decode_update dec =
    let dot = Dot.decode dec in
    let delta = Wire.Decoder.int dec in
    { dot; delta }
end
