(** The original list-scan causal MVR store, frozen as the quadratic
    baseline for the E20 delivery-buffer scaling experiment and the soak
    benchmark. Semantically equivalent to {!Causal_mvr_store} (same wire
    behaviour up to encoding, same delivered states); only its buffer data
    structure differs. Do not use it outside measurements. *)

include Store_intf.S

val delivery_stats : unit -> Store_intf.delivery_stats
(** Buffer work counters, aggregated across all replicas of this module. *)

val reset_delivery_stats : unit -> unit
