(** Dots: globally unique event identifiers [(replica, seq)].

    A dot names the [seq]-th update issued by [replica]. Stores tag writes
    and ORset additions with dots; the visibility *witness* a store reports
    for each operation is a set of dots (see [Haec_store.Store_intf]). *)

open Haec_wire

type t = { replica : int; seq : int }

val make : replica:int -> seq:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val encode : Wire.Encoder.t -> t -> unit

val decode : Wire.Decoder.t -> t

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

val encode_set : Wire.Encoder.t -> Set.t -> unit

val decode_set : Wire.Decoder.t -> Set.t

val encode_set_c : Wire.Encoder.t -> Set.t -> unit
(** Compressed set: bit-packs replicas and seqs when that beats the
    {!encode_set} pair list. The two layouts are distinguished by a
    leading zero, which the v1 layout also uses for the empty set — so
    this encoding is only safe inside containers that already carry a
    version marker (e.g. a v2 update batch); {!decode_set} cannot read
    it and vice versa. *)

val decode_set_any : Wire.Decoder.t -> Set.t
(** Reads either {!encode_set_c} layout. Only call where the enclosing
    frame guarantees the compressed grammar (see {!encode_set_c}). *)

val set_c_delta : Set.t -> int
(** Bytes {!encode_set_c} adds (positive) or saves (negative) relative
    to {!encode_set}, so a caller can decide whether a version-marked
    container paying per-frame marker bytes is worth it. *)
