open Haec_wire

(* The component array plus its cached sum. The sum is an order
   homomorphism — [a <= b] componentwise implies [sum a <= sum b] — so it
   settles most comparisons on the replication hot path without touching
   the array: [leq] refutes on [a.sum > b.sum], and [a <= b] with equal
   sums forces [a = b]. The cache is kept exact at construction and by
   the in-place operations, never recomputed lazily. *)
type t = { v : int array; mutable sum : int }

type order = Equal | Before | After | Concurrent

let sum_of = Array.fold_left ( + ) 0

let zero ~n =
  if n <= 0 then invalid_arg "Vclock.zero: n must be positive";
  { v = Array.make n 0; sum = 0 }

let of_array a =
  Array.iter (fun x -> if x < 0 then invalid_arg "Vclock.of_array: negative entry") a;
  { v = Array.copy a; sum = sum_of a }

let to_array t = Array.copy t.v

let size t = Array.length t.v

let get t r = t.v.(r)

let copy t = { v = Array.copy t.v; sum = t.sum }

let tick t r =
  let v' = Array.copy t.v in
  v'.(r) <- v'.(r) + 1;
  { v = v'; sum = t.sum + 1 }

let tick_into t r =
  t.v.(r) <- t.v.(r) + 1;
  t.sum <- t.sum + 1

let check_sizes a b =
  if Array.length a.v <> Array.length b.v then invalid_arg "Vclock: size mismatch"

let merge a b =
  check_sizes a b;
  let n = Array.length a.v in
  let v' = Array.make n 0 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a.v i and bi = Array.unsafe_get b.v i in
    let m = if ai >= bi then ai else bi in
    Array.unsafe_set v' i m;
    s := !s + m
  done;
  { v = v'; sum = !s }

let merge_into a b =
  check_sizes a b;
  let s = ref a.sum in
  for i = 0 to Array.length a.v - 1 do
    let ai = Array.unsafe_get a.v i and bi = Array.unsafe_get b.v i in
    if bi > ai then begin
      Array.unsafe_set a.v i bi;
      s := !s + (bi - ai)
    end
  done;
  a.sum <- !s

let compare_causal a b =
  check_sizes a b;
  if a == b then Equal
  else begin
    let n = Array.length a.v in
    let some_lt = ref false and some_gt = ref false in
    let i = ref 0 in
    (* stop as soon as both directions are witnessed: Concurrent *)
    while !i < n && not (!some_lt && !some_gt) do
      let ai = Array.unsafe_get a.v !i and bi = Array.unsafe_get b.v !i in
      if ai < bi then some_lt := true else if ai > bi then some_gt := true;
      incr i
    done;
    match (!some_lt, !some_gt) with
    | false, false -> Equal
    | true, false -> Before
    | false, true -> After
    | true, true -> Concurrent
  end

let leq a b =
  check_sizes a b;
  a.sum <= b.sum
  &&
  let n = Array.length a.v in
  let rec go i =
    i >= n || (Array.unsafe_get a.v i <= Array.unsafe_get b.v i && go (i + 1))
  in
  go 0

(* componentwise <= with equal sums forces equality, so strictness is
   just a sum test away *)
let lt a b = a.sum < b.sum && leq a b

let equal a b = Array.length a.v = Array.length b.v && a.sum = b.sum && a.v = b.v

let concurrent a b = compare_causal a b = Concurrent

let compare a b = Stdlib.compare a.v b.v

let sum t = t.sum

let raise_to t i x =
  if i < 0 || i >= Array.length t.v then invalid_arg "Vclock.raise_to: bad index";
  let cur = t.v.(i) in
  if x <= cur then t
  else begin
    let v' = Array.copy t.v in
    v'.(i) <- x;
    { v = v'; sum = t.sum + (x - cur) }
  end

(* Specialized paths (rather than [Encoder.array]/[Decoder.array]): every
   replicated message carries at least one clock, and the generic
   combinators pay an indirect call per entry. Decoding also folds the
   cached sum in the same pass. *)
let encode enc t = Wire.Encoder.uint_array enc t.v

let of_decoded v =
  let s = ref 0 in
  for i = 0 to Array.length v - 1 do
    s := !s + Array.unsafe_get v i
  done;
  { v; sum = !s }

let decode dec = of_decoded (Wire.Decoder.uint_array dec)

(* ---- wire v2: compressed absolute clocks ----

   Self-describing against the v1 layout: a v1 clock starts with its
   length varint, which is at least 1 ([zero] rejects n = 0), so a leading
   0x00 unambiguously marks a compressed layout. After the marker, a
   header byte selects the mode: 0 is run-length (run count, then
   (length, value) pairs), and w in [1, 56] is bit-packing (length varint,
   then ceil(n*w/8) payload bytes, little-endian bit order). The encoder
   computes all three candidate sizes in one pass over the entries and
   emits the smallest — the raw fallback is byte-identical to v1, so a
   compressed clock is never larger than its v1 encoding. *)

let varint_len v =
  let rec go acc v = if v < 0x80 then acc else go (acc + 1) (v lsr 7) in
  go 1 v

let bit_width v =
  let rec go acc v = if v < 2 then acc else go (acc + 1) (v lsr 1) in
  go 1 v

(* guards the run-length decoder against an allocation bomb: a claimed
   clock size far beyond any deployment is malformed, not a request for
   gigabytes *)
let max_decoded_size = 1 lsl 22

let encode_c enc t =
  let v = t.v in
  let n = Array.length v in
  if n = 0 then invalid_arg "Vclock.encode_c: empty clock";
  (* one allocation-free pass: integer accumulators ride the recursion
     (no refs — this runs once per encoded clock on the replication hot
     path, and captured refs would heap-allocate) *)
  let rec scan i raw maxv runs run_bytes run_val run_len =
    if i = n then begin
      let runs, run_bytes =
        if run_len > 0 then
          (runs + 1, run_bytes + varint_len run_len + varint_len run_val)
        else (runs, run_bytes)
      in
      (raw, maxv, runs, run_bytes)
    end
    else begin
      let x = Array.unsafe_get v i in
      if x < 0 then invalid_arg "Vclock.encode_c: negative entry";
      let raw = raw + varint_len x in
      let maxv = if x > maxv then x else maxv in
      if x = run_val then scan (i + 1) raw maxv runs run_bytes run_val (run_len + 1)
      else
        let runs, run_bytes =
          if run_len > 0 then
            (runs + 1, run_bytes + varint_len run_len + varint_len run_val)
          else (runs, run_bytes)
        in
        scan (i + 1) raw maxv runs run_bytes x 1
    end
  in
  let raw, maxv, runs, run_bytes = scan 0 (varint_len n) 0 0 0 (-1) 0 in
  let rle = 2 + varint_len runs + run_bytes in
  let w = bit_width maxv in
  let packed = if w > 56 then max_int else 2 + varint_len n + (((n * w) + 7) / 8) in
  if raw <= rle && raw <= packed then Wire.Encoder.uint_array enc v
  else if packed <= rle then begin
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc w;
    Wire.Encoder.uint enc n;
    Wire.Encoder.packed_array enc v ~width:w
  end
  else begin
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc runs;
    let rec emit i run_val run_len =
      if i = n then begin
        Wire.Encoder.uint enc run_len;
        Wire.Encoder.uint enc run_val
      end
      else
        let x = Array.unsafe_get v i in
        if x = run_val then emit (i + 1) run_val (run_len + 1)
        else begin
          Wire.Encoder.uint enc run_len;
          Wire.Encoder.uint enc run_val;
          emit (i + 1) x 1
        end
    in
    emit 1 (Array.unsafe_get v 0) 1
  end

let decode_any dec =
  if Wire.Decoder.peek dec <> 0 then decode dec
  else begin
    let _marker = Wire.Decoder.uint dec in
    match Wire.Decoder.uint dec with
    | 0 ->
      (* run-length: total size is implicit, so bound it explicitly *)
      let runs = Wire.Decoder.uint dec in
      if runs < 1 || runs > Wire.Decoder.remaining dec then
        raise (Wire.Decoder.Malformed "Vclock.decode_any: run count exceeds input");
      let parts = ref [] in
      let total = ref 0 in
      for _ = 1 to runs do
        let len = Wire.Decoder.uint dec in
        let value = Wire.Decoder.uint dec in
        if len < 1 then raise (Wire.Decoder.Malformed "Vclock.decode_any: empty run");
        total := !total + len;
        if !total > max_decoded_size then
          raise (Wire.Decoder.Malformed "Vclock.decode_any: implausible clock size");
        parts := (len, value) :: !parts
      done;
      let v = Array.make !total 0 in
      let s = ref 0 in
      let i = ref !total in
      List.iter
        (fun (len, value) ->
          for _ = 1 to len do
            decr i;
            Array.unsafe_set v !i value;
            s := !s + value
          done)
        !parts;
      { v; sum = !s }
    | w ->
      let n = Wire.Decoder.uint dec in
      if n < 1 then raise (Wire.Decoder.Malformed "Vclock.decode_any: empty clock");
      of_decoded (Wire.Decoder.packed_array dec ~n ~width:w)
  end

let encode_delta enc ~prev t =
  check_sizes prev t;
  let n = Array.length t.v in
  Wire.Encoder.uint enc n;
  for i = 0 to n - 1 do
    let d = t.v.(i) - prev.v.(i) in
    if d < 0 then invalid_arg "Vclock.encode_delta: prev exceeds clock";
    Wire.Encoder.uint enc d
  done

let decode_delta dec ~prev =
  let n = Wire.Decoder.uint dec in
  if n <> Array.length prev.v then
    raise (Wire.Decoder.Malformed "Vclock.decode_delta: size mismatch");
  let v = Array.make n 0 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let x = prev.v.(i) + Wire.Decoder.uint dec in
    v.(i) <- x;
    s := !s + x
  done;
  { v; sum = !s }

(* ---- wire v2: sparse deltas ----

   Dependency vectors within one batch differ from their predecessor in
   very few entries (usually one, often none), so listing only the changed
   entries beats the dense delta. Layout after the 0x00 marker: a changed
   count, then (gap, delta) pairs — [gap] the number of unchanged entries
   skipped since the previous changed one, [delta] the strictly positive
   increment. The dense fallback is byte-identical to v1 ([n] >= 1 leads),
   so the sparse form is never larger. *)

let encode_delta_c enc ~prev t =
  check_sizes prev t;
  let n = Array.length t.v in
  if n = 0 then invalid_arg "Vclock.encode_delta_c: empty clock";
  let rec scan i dense sparse changed last =
    if i = n then (dense, sparse, changed)
    else begin
      let d = Array.unsafe_get t.v i - Array.unsafe_get prev.v i in
      if d < 0 then invalid_arg "Vclock.encode_delta_c: prev exceeds clock";
      if d = 0 then scan (i + 1) (dense + 1) sparse changed last
      else
        scan (i + 1) (dense + varint_len d)
          (sparse + varint_len (i - last - 1) + varint_len d)
          (changed + 1) i
    end
  in
  let dense, sparse, changed = scan 0 (varint_len n) 2 0 (-1) in
  if dense <= sparse then encode_delta enc ~prev t
  else begin
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc changed;
    let last = ref (-1) in
    for i = 0 to n - 1 do
      let d = t.v.(i) - prev.v.(i) in
      if d > 0 then begin
        Wire.Encoder.uint enc (i - !last - 1);
        Wire.Encoder.uint enc d;
        last := i
      end
    done
  end

let decode_delta_any dec ~prev =
  if Wire.Decoder.peek dec <> 0 then decode_delta dec ~prev
  else begin
    let _marker = Wire.Decoder.uint dec in
    let n = Array.length prev.v in
    let count = Wire.Decoder.uint dec in
    if count > n || count > Wire.Decoder.remaining dec then
      raise (Wire.Decoder.Malformed "Vclock.decode_delta_any: bad changed count");
    let v = Array.copy prev.v in
    let s = ref prev.sum in
    let i = ref (-1) in
    for _ = 1 to count do
      let gap = Wire.Decoder.uint dec in
      let d = Wire.Decoder.uint dec in
      i := !i + gap + 1;
      if !i >= n then
        raise (Wire.Decoder.Malformed "Vclock.decode_delta_any: index out of range");
      if d < 1 then raise (Wire.Decoder.Malformed "Vclock.decode_delta_any: zero delta");
      v.(!i) <- v.(!i) + d;
      s := !s + d
    done;
    { v; sum = !s }
  end

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    t.v
