open Haec_wire

(* The component array plus its cached sum. The sum is an order
   homomorphism — [a <= b] componentwise implies [sum a <= sum b] — so it
   settles most comparisons on the replication hot path without touching
   the array: [leq] refutes on [a.sum > b.sum], and [a <= b] with equal
   sums forces [a = b]. The cache is kept exact at construction and by
   the in-place operations, never recomputed lazily. *)
type t = { v : int array; mutable sum : int }

type order = Equal | Before | After | Concurrent

let sum_of = Array.fold_left ( + ) 0

let zero ~n =
  if n <= 0 then invalid_arg "Vclock.zero: n must be positive";
  { v = Array.make n 0; sum = 0 }

let of_array a =
  Array.iter (fun x -> if x < 0 then invalid_arg "Vclock.of_array: negative entry") a;
  { v = Array.copy a; sum = sum_of a }

let to_array t = Array.copy t.v

let size t = Array.length t.v

let get t r = t.v.(r)

let copy t = { v = Array.copy t.v; sum = t.sum }

let tick t r =
  let v' = Array.copy t.v in
  v'.(r) <- v'.(r) + 1;
  { v = v'; sum = t.sum + 1 }

let tick_into t r =
  t.v.(r) <- t.v.(r) + 1;
  t.sum <- t.sum + 1

let check_sizes a b =
  if Array.length a.v <> Array.length b.v then invalid_arg "Vclock: size mismatch"

let merge a b =
  check_sizes a b;
  let n = Array.length a.v in
  let v' = Array.make n 0 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a.v i and bi = Array.unsafe_get b.v i in
    let m = if ai >= bi then ai else bi in
    Array.unsafe_set v' i m;
    s := !s + m
  done;
  { v = v'; sum = !s }

let merge_into a b =
  check_sizes a b;
  let s = ref a.sum in
  for i = 0 to Array.length a.v - 1 do
    let ai = Array.unsafe_get a.v i and bi = Array.unsafe_get b.v i in
    if bi > ai then begin
      Array.unsafe_set a.v i bi;
      s := !s + (bi - ai)
    end
  done;
  a.sum <- !s

let compare_causal a b =
  check_sizes a b;
  if a == b then Equal
  else begin
    let n = Array.length a.v in
    let some_lt = ref false and some_gt = ref false in
    let i = ref 0 in
    (* stop as soon as both directions are witnessed: Concurrent *)
    while !i < n && not (!some_lt && !some_gt) do
      let ai = Array.unsafe_get a.v !i and bi = Array.unsafe_get b.v !i in
      if ai < bi then some_lt := true else if ai > bi then some_gt := true;
      incr i
    done;
    match (!some_lt, !some_gt) with
    | false, false -> Equal
    | true, false -> Before
    | false, true -> After
    | true, true -> Concurrent
  end

let leq a b =
  check_sizes a b;
  a.sum <= b.sum
  &&
  let n = Array.length a.v in
  let rec go i =
    i >= n || (Array.unsafe_get a.v i <= Array.unsafe_get b.v i && go (i + 1))
  in
  go 0

(* componentwise <= with equal sums forces equality, so strictness is
   just a sum test away *)
let lt a b = a.sum < b.sum && leq a b

let equal a b = Array.length a.v = Array.length b.v && a.sum = b.sum && a.v = b.v

let concurrent a b = compare_causal a b = Concurrent

let compare a b = Stdlib.compare a.v b.v

let sum t = t.sum

(* Specialized paths (rather than [Encoder.array]/[Decoder.array]): every
   replicated message carries at least one clock, and the generic
   combinators pay an indirect call per entry. Decoding also folds the
   cached sum in the same pass. *)
let encode enc t = Wire.Encoder.uint_array enc t.v

let decode dec =
  let n = Wire.Decoder.uint dec in
  if n < 0 || n > Wire.Decoder.remaining dec then
    raise (Wire.Decoder.Malformed "Vclock.decode: length exceeds input");
  let v = Array.make n 0 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let x = Wire.Decoder.uint dec in
    Array.unsafe_set v i x;
    s := !s + x
  done;
  { v; sum = !s }

let encode_delta enc ~prev t =
  check_sizes prev t;
  let n = Array.length t.v in
  Wire.Encoder.uint enc n;
  for i = 0 to n - 1 do
    let d = t.v.(i) - prev.v.(i) in
    if d < 0 then invalid_arg "Vclock.encode_delta: prev exceeds clock";
    Wire.Encoder.uint enc d
  done

let decode_delta dec ~prev =
  let n = Wire.Decoder.uint dec in
  if n <> Array.length prev.v then
    raise (Wire.Decoder.Malformed "Vclock.decode_delta: size mismatch");
  let v = Array.make n 0 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let x = prev.v.(i) + Wire.Decoder.uint dec in
    v.(i) <- x;
    s := !s + x
  done;
  { v; sum = !s }

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    t.v
