open Haec_wire

module T = struct
  type t = { replica : int; seq : int }

  let compare a b =
    match Int.compare a.replica b.replica with
    | 0 -> Int.compare a.seq b.seq
    | c -> c
end

include T

let make ~replica ~seq = { replica; seq }

let equal a b = compare a b = 0

let encode enc t =
  Wire.Encoder.uint enc t.replica;
  Wire.Encoder.uint enc t.seq

let decode dec =
  let replica = Wire.Decoder.uint dec in
  let seq = Wire.Decoder.uint dec in
  { replica; seq }

let pp ppf t = Format.fprintf ppf "%d.%d" t.replica t.seq

module Set = Set.Make (T)
module Map = Map.Make (T)

let encode_set enc s = Wire.Encoder.list enc encode (Set.elements s)

let decode_set dec = Set.of_list (Wire.Decoder.list dec decode)

(* Compressed sets, for version-marked containers only. The v1 layout
   encodes an empty set as the single byte 0x00, so a leading zero is NOT
   self-describing here (unlike vclocks, whose v1 form always starts with
   a count >= 1): the caller must already know from an enclosing frame
   marker that the compressed grammar applies. Layouts:
     count >= 1, (replica, seq)*          -- the v1 pair list
     0x00, 0x00                           -- empty set
     0x00, count >= 1, rw, sw, packed replicas, packed seqs
   The chooser emits whichever is smaller, so a compressed set never
   exceeds its v1 size by more than the 1-byte empty-set marker. *)

let varint_len v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let bit_width v =
  let rec go v acc = if v = 0 then max acc 1 else go (v lsr 1) (acc + 1) in
  go v 0

(* (v1 bytes, compressed bytes, replica width, seq width) for [s]; the
   compressed layout never beats v1 on the empty set (2 bytes vs 1) and
   only wins on sets big enough to amortise the width header *)
let set_sizes s =
  if Set.is_empty s then (1, 2, 0, 0)
  else begin
    let count = Set.cardinal s in
    let rw = ref 1 and sw = ref 1 and v1 = ref (varint_len count) in
    Set.iter
      (fun d ->
        rw := max !rw (bit_width d.replica);
        sw := max !sw (bit_width d.seq);
        v1 := !v1 + varint_len d.replica + varint_len d.seq)
      s;
    let packed =
      1 + varint_len count + 2 + (((count * !rw) + 7) / 8) + (((count * !sw) + 7) / 8)
    in
    (!v1, min !v1 packed, !rw, !sw)
  end

let set_c_delta s =
  let v1, c, _, _ = set_sizes s in
  c - v1

let encode_set_c enc s =
  let elts = Set.elements s in
  let count = List.length elts in
  if count = 0 then begin
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc 0
  end
  else begin
    let v1, best, rw, sw = set_sizes s in
    if best >= v1 then encode_set enc s
    else begin
      Wire.Encoder.uint enc 0;
      Wire.Encoder.uint enc count;
      Wire.Encoder.uint enc rw;
      Wire.Encoder.uint enc sw;
      let rs = Array.make count 0 and ss = Array.make count 0 in
      List.iteri
        (fun i d ->
          rs.(i) <- d.replica;
          ss.(i) <- d.seq)
        elts;
      Wire.Encoder.packed_array enc rs ~width:rw;
      Wire.Encoder.packed_array enc ss ~width:sw
    end
  end

let decode_set_any dec =
  if Wire.Decoder.peek dec <> 0 then decode_set dec
  else begin
    ignore (Wire.Decoder.uint dec);
    let count = Wire.Decoder.uint dec in
    if count = 0 then Set.empty
    else begin
      let rw = Wire.Decoder.uint dec in
      let sw = Wire.Decoder.uint dec in
      let rs = Wire.Decoder.packed_array dec ~n:count ~width:rw in
      let ss = Wire.Decoder.packed_array dec ~n:count ~width:sw in
      let s = ref Set.empty in
      for i = 0 to count - 1 do
        s := Set.add { replica = rs.(i); seq = ss.(i) } !s
      done;
      !s
    end
  end
