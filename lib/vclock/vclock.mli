(** Vector clocks over a fixed set of [n] replicas (Fidge/Mattern).

    A vector clock is the canonical device for tracking potential causality;
    the causally consistent store of Section 6 of the paper uses them, which
    is exactly why its messages cost Theta(n lg k) bits. *)

open Haec_wire

type t
(** Immutable vector of [n] non-negative counters. *)

type order =
  | Equal
  | Before  (** strictly dominated: happens-before *)
  | After  (** strictly dominates *)
  | Concurrent

val zero : n:int -> t

val of_array : int array -> t
(** Copies its argument. Requires all entries non-negative. *)

val to_array : t -> int array
(** Fresh copy. *)

val size : t -> int
(** Number of replicas [n]. *)

val get : t -> int -> int

val copy : t -> t
(** A clock sharing no mutable state with the original — the required
    starting point for the [_into] operations below. *)

val tick : t -> int -> t
(** [tick v r] increments component [r]. *)

val tick_into : t -> int -> unit
(** In-place {!tick}. {b Only} for clocks the caller uniquely owns (e.g.
    obtained via {!copy}); a clock that has been shared — stored in a
    state, captured in a record, returned to a caller — must never be
    mutated, as every [t] handed across an API boundary is immutable by
    contract. *)

val merge : t -> t -> t
(** Component-wise maximum. Requires equal sizes. *)

val merge_into : t -> t -> unit
(** [merge_into a b] sets [a] to the component-wise maximum of [a] and
    [b] in place, leaving [b] untouched. Same unique-ownership caveat as
    {!tick_into}. *)

val compare_causal : t -> t -> order

val leq : t -> t -> bool
(** [leq a b] iff every component of [a] is [<=] the one of [b]. *)

val lt : t -> t -> bool
(** [leq a b] and [a <> b]. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic) for use in sets/maps; unrelated to causality. *)

val sum : t -> int
(** Sum of components: the number of events the clock accounts for. *)

val raise_to : t -> int -> int -> t
(** [raise_to t i x] is [t] with component [i] lifted to at least [x]
    (returned physically unchanged when already there). The entrywise-max
    update anti-entropy peers apply when a message proves its sender holds
    a prefix. *)

val encode : Wire.Encoder.t -> t -> unit

val decode : Wire.Decoder.t -> t

val encode_c : Wire.Encoder.t -> t -> unit
(** Wire-v2 compressed clock: one pass computes the raw (v1), run-length,
    and bit-packed sizes and emits the smallest, so the result is never
    larger than {!encode}. Compressed layouts lead with a 0x00 marker — a
    byte no v1 clock starts with ([n >= 1]) — keeping the stream
    self-describing; raw fallback is byte-identical to v1. Requires a
    non-empty clock. *)

val decode_any : Wire.Decoder.t -> t
(** Decode either {!encode} or {!encode_c} output (the marker byte
    disambiguates). Raises [Wire.Decoder.Malformed] on structural errors,
    including implausibly large run-length totals. *)

val encode_delta : Wire.Encoder.t -> prev:t -> t -> unit
(** Encode the clock as entrywise differences against [prev], which must
    be componentwise [<=] the clock (raises [Invalid_argument] otherwise).
    Dependency vectors within one message batch are componentwise
    non-decreasing, so successive deltas are mostly zero and each costs
    one varint byte where an absolute entry costs up to five. The framing
    stays self-contained: [prev] comes from the {e same} message, never
    from connection state, so loss, duplication, and reordering cannot
    desynchronize the codec. *)

val decode_delta : Wire.Decoder.t -> prev:t -> t
(** Inverse of {!encode_delta} against the same [prev]. Raises
    [Wire.Decoder.Malformed] on a size mismatch. *)

val encode_delta_c : Wire.Encoder.t -> prev:t -> t -> unit
(** Wire-v2 delta: lists only the changed entries as (gap, increment)
    pairs behind a 0x00 marker when that is smaller than the dense
    {!encode_delta} form, which stays the fallback (byte-identical to v1).
    Same [prev] contract as {!encode_delta}. *)

val decode_delta_any : Wire.Decoder.t -> prev:t -> t
(** Decode either {!encode_delta} or {!encode_delta_c} output against the
    same [prev]. *)

val pp : Format.formatter -> t -> unit
