type do_event = {
  replica : int;
  obj : int;
  op : Op.t;
  rval : Op.response;
}

type t =
  | Do of do_event
  | Send of { replica : int; msg : Message.t }
  | Receive of { replica : int; msg : Message.t }
  | Crash of { replica : int }
  | Recover of { replica : int }
  | Join of { replica : int; epoch : int }
  | Leave of { replica : int; epoch : int; graceful : bool }

type action =
  | Act_do
  | Act_send
  | Act_receive
  | Act_crash
  | Act_recover
  | Act_join
  | Act_leave

let replica = function
  | Do { replica; _ }
  | Send { replica; _ }
  | Receive { replica; _ }
  | Crash { replica }
  | Recover { replica }
  | Join { replica; _ }
  | Leave { replica; _ } -> replica

let act = function
  | Do _ -> Act_do
  | Send _ -> Act_send
  | Receive _ -> Act_receive
  | Crash _ -> Act_crash
  | Recover _ -> Act_recover
  | Join _ -> Act_join
  | Leave _ -> Act_leave

let msg = function
  | Do _ | Crash _ | Recover _ | Join _ | Leave _ -> None
  | Send { msg; _ } | Receive { msg; _ } -> Some msg

let as_do = function
  | Do d -> Some d
  | Send _ | Receive _ | Crash _ | Recover _ | Join _ | Leave _ -> None

let is_do = function
  | Do _ -> true
  | Send _ | Receive _ | Crash _ | Recover _ | Join _ | Leave _ -> false

let is_write_do = function
  | Do { op; _ } -> Op.is_update op
  | Send _ | Receive _ | Crash _ | Recover _ | Join _ | Leave _ -> false

let is_read_do = function
  | Do { op; _ } -> Op.is_read op
  | Send _ | Receive _ | Crash _ | Recover _ | Join _ | Leave _ -> false

let pp_do ppf { replica; obj; op; rval } =
  Format.fprintf ppf "do@%d(o%d, %a) -> %a" replica obj Op.pp op Op.pp_response rval

let pp ppf = function
  | Do d -> pp_do ppf d
  | Send { replica; msg } -> Format.fprintf ppf "send@%d(%a)" replica Message.pp msg
  | Receive { replica; msg } ->
    Format.fprintf ppf "recv@%d(%a)" replica Message.pp msg
  | Crash { replica } -> Format.fprintf ppf "crash@%d" replica
  | Recover { replica } -> Format.fprintf ppf "recover@%d" replica
  | Join { replica; epoch } -> Format.fprintf ppf "join@%d[e%d]" replica epoch
  | Leave { replica; epoch; graceful } ->
    Format.fprintf ppf "%s@%d[e%d]" (if graceful then "leave" else "crash-leave") replica epoch
