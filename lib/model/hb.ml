type t = {
  exec : Execution.t;
  labels : int array array;
}

let compute exec =
  (match Execution.check_well_formed exec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Hb.compute: execution not well-formed: " ^ m));
  let n = Execution.n_replicas exec in
  let len = Execution.length exec in
  let labels = Array.make len [||] in
  let last = Array.make n (-1) in
  let send_index : (Message.id, int) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to len - 1 do
    let e = Execution.get exec i in
    let r = Event.replica e in
    let base =
      if last.(r) >= 0 then Array.copy labels.(last.(r)) else Array.make n (-1)
    in
    (match e with
    | Event.Receive { msg; _ } ->
      let j = Hashtbl.find send_index (Message.id msg) in
      let sender_label = labels.(j) in
      for p = 0 to n - 1 do
        if sender_label.(p) > base.(p) then base.(p) <- sender_label.(p)
      done
    | Event.Send { msg; _ } -> Hashtbl.replace send_index (Message.id msg) i
    | Event.Do _ | Event.Crash _ | Event.Recover _ | Event.Join _ | Event.Leave _ -> ());
    base.(r) <- i;
    labels.(i) <- base;
    last.(r) <- i
  done;
  { exec; labels }

let execution t = t.exec

let hb_or_eq t i j =
  let r = Event.replica (Execution.get t.exec i) in
  t.labels.(j).(r) >= i

let hb t i j = i <> j && hb_or_eq t i j

let concurrent t i j = i <> j && (not (hb t i j)) && not (hb t j i)

let label t i = Array.copy t.labels.(i)

let past t i =
  let acc = ref [] in
  for j = Execution.length t.exec - 1 downto 0 do
    if hb t j i then acc := j :: !acc
  done;
  !acc

let future t i =
  let acc = ref [] in
  for j = Execution.length t.exec - 1 downto i + 1 do
    if hb t i j then acc := j :: !acc
  done;
  !acc

let past_closure_keep t i j = j = i || hb t j i
