open Haec_wire

let magic = "HAEC"

(* version 2 added crash/recover fault events; version 3 added the initial
   member count to the header and join/leave membership events; traces of
   earlier versions decode unchanged (initial defaults to n) *)
let version = 3

let encode_response enc = function
  | Op.Ok -> Wire.Encoder.uint enc 0
  | Op.Vals vs ->
    Wire.Encoder.uint enc 1;
    Wire.Encoder.list enc Value.encode vs

let decode_response dec =
  match Wire.Decoder.uint dec with
  | 0 -> Op.Ok
  | 1 -> Op.vals (Wire.Decoder.list dec Value.decode)
  | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad response tag %d" tag))

let encode_message enc (m : Message.t) =
  Wire.Encoder.uint enc m.Message.sender;
  Wire.Encoder.uint enc m.Message.seq;
  Wire.Encoder.string enc m.Message.payload

let decode_message dec =
  let sender = Wire.Decoder.uint dec in
  let seq = Wire.Decoder.uint dec in
  let payload = Wire.Decoder.string dec in
  { Message.sender; seq; payload }

let encode_event enc = function
  | Event.Do { replica; obj; op; rval } ->
    Wire.Encoder.uint enc 0;
    Wire.Encoder.uint enc replica;
    Wire.Encoder.uint enc obj;
    Op.encode enc op;
    encode_response enc rval
  | Event.Send { replica; msg } ->
    Wire.Encoder.uint enc 1;
    Wire.Encoder.uint enc replica;
    encode_message enc msg
  | Event.Receive { replica; msg } ->
    Wire.Encoder.uint enc 2;
    Wire.Encoder.uint enc replica;
    encode_message enc msg
  | Event.Crash { replica } ->
    Wire.Encoder.uint enc 3;
    Wire.Encoder.uint enc replica
  | Event.Recover { replica } ->
    Wire.Encoder.uint enc 4;
    Wire.Encoder.uint enc replica
  | Event.Join { replica; epoch } ->
    Wire.Encoder.uint enc 5;
    Wire.Encoder.uint enc replica;
    Wire.Encoder.uint enc epoch
  | Event.Leave { replica; epoch; graceful } ->
    Wire.Encoder.uint enc 6;
    Wire.Encoder.uint enc replica;
    Wire.Encoder.uint enc epoch;
    Wire.Encoder.uint enc (if graceful then 1 else 0)

let decode_event dec =
  match Wire.Decoder.uint dec with
  | 0 ->
    let replica = Wire.Decoder.uint dec in
    let obj = Wire.Decoder.uint dec in
    let op = Op.decode dec in
    let rval = decode_response dec in
    Event.Do { replica; obj; op; rval }
  | 1 ->
    let replica = Wire.Decoder.uint dec in
    let msg = decode_message dec in
    Event.Send { replica; msg }
  | 2 ->
    let replica = Wire.Decoder.uint dec in
    let msg = decode_message dec in
    Event.Receive { replica; msg }
  | 3 ->
    let replica = Wire.Decoder.uint dec in
    Event.Crash { replica }
  | 4 ->
    let replica = Wire.Decoder.uint dec in
    Event.Recover { replica }
  | 5 ->
    let replica = Wire.Decoder.uint dec in
    let epoch = Wire.Decoder.uint dec in
    Event.Join { replica; epoch }
  | 6 ->
    let replica = Wire.Decoder.uint dec in
    let epoch = Wire.Decoder.uint dec in
    let graceful = Wire.Decoder.uint dec <> 0 in
    Event.Leave { replica; epoch; graceful }
  | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad event tag %d" tag))

let encode_execution enc exec =
  Wire.Encoder.string enc magic;
  Wire.Encoder.uint enc version;
  Wire.Encoder.uint enc (Execution.n_replicas exec);
  Wire.Encoder.uint enc (Execution.initial_members exec);
  Wire.Encoder.list enc encode_event (Execution.events exec)

let decode_execution dec =
  let m = Wire.Decoder.string dec in
  if m <> magic then raise (Wire.Decoder.Malformed "not a haec trace");
  let v = Wire.Decoder.uint dec in
  if v < 1 || v > version then
    raise (Wire.Decoder.Malformed (Printf.sprintf "unsupported trace version %d" v));
  let n = Wire.Decoder.uint dec in
  if n <= 0 then raise (Wire.Decoder.Malformed "bad replica count");
  let initial = if v >= 3 then Wire.Decoder.uint dec else n in
  if initial <= 0 || initial > n then
    raise (Wire.Decoder.Malformed "bad initial member count");
  let events = Wire.Decoder.list dec decode_event in
  Execution.of_list ~n ~initial events

let to_string exec = Wire.encode (fun enc -> encode_execution enc exec)

let of_string s = Wire.decode s decode_execution

let save path exec =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string exec))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
