(** Events of a concrete execution (Section 2).

    Three kinds, exactly as in the paper: a [do] models a client invoking an
    operation and immediately receiving a response (high availability: no
    communication happens inside a [do]); [send] broadcasts a message;
    [receive] delivers one.

    Beyond the paper's failure-free model, an execution may also record
    crash–recovery faults: [crash] marks the instant a replica loses its
    volatile state and stops taking events, [recover] the instant it
    resumes from durable state. Between a [crash] and its matching
    [recover] the replica has no events at all — well-formedness
    ({!Execution.check_well_formed}) enforces this.

    Dynamic membership adds [join] and [leave]: a [join] marks the instant
    a reserve replica enters the replica set (booting empty), a [leave]
    the instant a member departs for good — gracefully (it flushed its
    pending message first) or as a crash-leave (it simply vanished; repair
    is up to the surviving replicas). Both carry the membership epoch in
    force {e after} the change; epochs increase strictly across the
    execution. A replica has no events before its [join] or after its
    [leave]. *)

type do_event = {
  replica : int;
  obj : int;
  op : Op.t;
  rval : Op.response;
}

type t =
  | Do of do_event
  | Send of { replica : int; msg : Message.t }
  | Receive of { replica : int; msg : Message.t }
  | Crash of { replica : int }
  | Recover of { replica : int }
  | Join of { replica : int; epoch : int }
  | Leave of { replica : int; epoch : int; graceful : bool }

type action =
  | Act_do
  | Act_send
  | Act_receive
  | Act_crash
  | Act_recover
  | Act_join
  | Act_leave

val replica : t -> int
(** [R(e)]: the replica at which the event occurs. *)

val act : t -> action

val msg : t -> Message.t option
(** The message attribute of a [send]/[receive]; [None] for a [do]. *)

val as_do : t -> do_event option

val is_do : t -> bool

val is_write_do : t -> bool
(** A [do] event whose operation is an update. *)

val is_read_do : t -> bool

val pp : Format.formatter -> t -> unit

val pp_do : Format.formatter -> do_event -> unit
