(** Concrete executions: interleaved sequences of events (Section 2).

    An execution carries the number of replicas [n]; replicas are numbered
    [0 .. n-1]. Events are addressed by their index in the sequence.

    With dynamic membership, [n] is the replica-id {e capacity}: ids
    [0 .. initial-1] are members from time zero, ids [initial .. n-1] form
    a reserve pool that may enter via [Join] events. [initial] defaults to
    [n] (the static case, every id a member throughout). *)

type t

val of_list : n:int -> ?initial:int -> Event.t list -> t

val of_array : n:int -> ?initial:int -> Event.t array -> t
(** Copies its argument. *)

val empty : n:int -> t

val n_replicas : t -> int

val initial_members : t -> int
(** Count of replicas that are members at time zero; equals [n_replicas]
    for static executions. *)

val length : t -> int

val get : t -> int -> Event.t

val events : t -> Event.t list

val to_array : t -> Event.t array
(** Fresh copy. *)

val append : t -> Event.t -> t

val concat : t -> Event.t list -> t

val indices_at_replica : t -> int -> int list
(** Indices of the subsequence [α|R], in order. *)

val at_replica : t -> int -> Event.t list
(** The subsequence [α|R]. *)

val do_events : t -> (int * Event.do_event) list
(** All [do] events with their indices, in execution order. *)

val do_projection : t -> int -> Event.do_event list
(** [α|R^do]: the subsequence of do events at replica [R] (Definition 9). *)

val check_well_formed : t -> (unit, string) result
(** The structural half of Definition 1: every [receive(m)] is preceded by
    the [send(m)] event of a different replica, and each replica's send
    sequence numbers are distinct. Crash–recovery faults must alternate
    per replica ([crash] only while up, [recover] only while down) and a
    crashed replica has no do/send/receive events until it recovers.
    Membership is checked too: replicas [initial .. n-1] have no events
    before their [Join]; a departed replica has none after its [Leave];
    joins and leaves carry strictly increasing epochs; only members
    crash, recover, or leave, and a crashed replica cannot leave (a
    vanished member is a crash-leave, a single [Leave] with
    [graceful = false]).
    (State-machine well-formedness — that each replica's subsequence is a
    run of its transition function — is guaranteed by construction when
    executions are produced by the simulator, and checked there.) *)

val is_well_formed : t -> bool

val subsequence : t -> keep:(int -> bool) -> t
(** The events whose indices satisfy [keep], in order. *)

val messages_sent : t -> Message.t list

val total_message_bits : t -> int

val max_message_bits : t -> int
(** Size of the largest message sent; 0 if none. *)

val pp : Format.formatter -> t -> unit
