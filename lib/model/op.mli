(** Client operations and their responses.

    The operation vocabulary covers all object types of Figure 1:
    [Read]/[Write] apply to registers and MVRs, [Add]/[Remove]/[Read] to
    ORsets. Responses are normalized: a value set is a sorted duplicate-free
    list, so responses compare with structural equality. *)

type t =
  | Read
  | Write of Value.t
  | Add of Value.t
  | Remove of Value.t

type response =
  | Ok  (** response of every update operation (Figure 1) *)
  | Vals of Value.t list
      (** response of a read: the set of current values (singleton or empty
          for a register, possibly larger for an MVR or an ORset) *)

val is_read : t -> bool

val is_update : t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val vals : Value.t list -> response
(** Canonicalize (sort, dedup) and wrap. *)

val encode : Haec_wire.Wire.Encoder.t -> t -> unit
(** Tagged wire encoding, shared by trace serialization and the durable
    store's write-ahead log. *)

val decode : Haec_wire.Wire.Decoder.t -> t
(** Raises [Haec_wire.Wire.Decoder.Malformed] on an unknown tag. *)

val compare_response : response -> response -> int

val equal_response : response -> response -> bool

val pp : Format.formatter -> t -> unit

val pp_response : Format.formatter -> response -> unit
