open Haec_wire

type t =
  | Read
  | Write of Value.t
  | Add of Value.t
  | Remove of Value.t

type response =
  | Ok
  | Vals of Value.t list

let is_read = function Read -> true | Write _ | Add _ | Remove _ -> false

let is_update op = not (is_read op)

let tag = function Read -> 0 | Write _ -> 1 | Add _ -> 2 | Remove _ -> 3

let compare a b =
  match (a, b) with
  | Read, Read -> 0
  | Write x, Write y | Add x, Add y | Remove x, Remove y -> Value.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let vals l = Vals (List.sort_uniq Value.compare l)

let compare_response a b =
  match (a, b) with
  | Ok, Ok -> 0
  | Ok, Vals _ -> -1
  | Vals _, Ok -> 1
  | Vals xs, Vals ys -> List.compare Value.compare xs ys

let equal_response a b = compare_response a b = 0

let encode enc = function
  | Read -> Wire.Encoder.uint enc 0
  | Write v ->
    Wire.Encoder.uint enc 1;
    Value.encode enc v
  | Add v ->
    Wire.Encoder.uint enc 2;
    Value.encode enc v
  | Remove v ->
    Wire.Encoder.uint enc 3;
    Value.encode enc v

let decode dec =
  match Wire.Decoder.uint dec with
  | 0 -> Read
  | 1 -> Write (Value.decode dec)
  | 2 -> Add (Value.decode dec)
  | 3 -> Remove (Value.decode dec)
  | tag -> raise (Wire.Decoder.Malformed (Printf.sprintf "bad op tag %d" tag))

let pp ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write v -> Format.fprintf ppf "write(%a)" Value.pp v
  | Add v -> Format.fprintf ppf "add(%a)" Value.pp v
  | Remove v -> Format.fprintf ppf "remove(%a)" Value.pp v

let pp_response ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Vals vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Value.pp)
      vs
