type t = { n : int; initial : int; events : Event.t array }

let of_array ~n ?initial events =
  if n <= 0 then invalid_arg "Execution.of_array: n must be positive";
  let initial = match initial with Some i -> i | None -> n in
  if initial <= 0 || initial > n then
    invalid_arg "Execution.of_array: initial members out of range";
  { n; initial; events = Array.copy events }

let of_list ~n ?initial events = of_array ~n ?initial (Array.of_list events)

let empty ~n = of_array ~n [||]

let n_replicas t = t.n

let initial_members t = t.initial

let length t = Array.length t.events

let get t i = t.events.(i)

let events t = Array.to_list t.events

let to_array t = Array.copy t.events

let append t e = { t with events = Array.append t.events [| e |] }

let concat t es = { t with events = Array.append t.events (Array.of_list es) }

let indices_at_replica t r =
  let acc = ref [] in
  Array.iteri (fun i e -> if Event.replica e = r then acc := i :: !acc) t.events;
  List.rev !acc

let at_replica t r = List.map (get t) (indices_at_replica t r)

let do_events t =
  let acc = ref [] in
  Array.iteri
    (fun i e -> match Event.as_do e with Some d -> acc := (i, d) :: !acc | None -> ())
    t.events;
  List.rev !acc

let do_projection t r =
  List.filter_map
    (fun (_, d) -> if d.Event.replica = r then Some d else None)
    (do_events t)

(* lifecycle of a replica id along the trace: a reserve id joins at most
   once, a member leaves at most once, and membership epochs stamped on
   join/leave events increase strictly *)
type presence = Reserve | Member | Departed

let check_well_formed t =
  let sent : (Message.id, int) Hashtbl.t = Hashtbl.create 64 in
  let down = Array.make t.n false in
  let present = Array.init t.n (fun r -> if r < t.initial then Member else Reserve) in
  let last_epoch = ref 0 in
  let exception Bad of string in
  try
    Array.iteri
      (fun i e ->
        let r = Event.replica e in
        if r < 0 || r >= t.n then
          raise (Bad (Printf.sprintf "event %d at out-of-range replica %d" i r));
        (* a crashed replica takes no events until it recovers, and a
           replica has no events outside its membership *)
        (match e with
        | Event.Crash _ | Event.Recover _ | Event.Join _ | Event.Leave _ -> ()
        | Event.Do _ | Event.Send _ | Event.Receive _ ->
          (match present.(r) with
          | Member -> ()
          | Reserve ->
            raise (Bad (Printf.sprintf "event %d at replica %d before it joined" i r))
          | Departed ->
            raise (Bad (Printf.sprintf "event %d at replica %d after it left" i r)));
          if down.(r) then
            raise (Bad (Printf.sprintf "event %d at crashed replica %d" i r)));
        match e with
        | Event.Send { msg; _ } ->
          if msg.Message.sender <> r then
            raise (Bad (Printf.sprintf "event %d: send by %d of a message stamped %d" i r msg.Message.sender));
          if Hashtbl.mem sent (Message.id msg) then
            raise (Bad (Printf.sprintf "event %d: duplicate send of message" i));
          Hashtbl.add sent (Message.id msg) i
        | Event.Receive { msg; _ } ->
          (match Hashtbl.find_opt sent (Message.id msg) with
          | None -> raise (Bad (Printf.sprintf "event %d: receive before send" i))
          | Some _ ->
            if msg.Message.sender = r then
              raise (Bad (Printf.sprintf "event %d: replica %d receives its own message" i r)))
        | Event.Crash _ ->
          if present.(r) <> Member then
            raise (Bad (Printf.sprintf "event %d: non-member replica %d crashes" i r));
          if down.(r) then
            raise (Bad (Printf.sprintf "event %d: replica %d crashes while down" i r));
          down.(r) <- true
        | Event.Recover _ ->
          if present.(r) <> Member then
            raise (Bad (Printf.sprintf "event %d: non-member replica %d recovers" i r));
          if not down.(r) then
            raise (Bad (Printf.sprintf "event %d: replica %d recovers while up" i r));
          down.(r) <- false
        | Event.Join { epoch; _ } ->
          (match present.(r) with
          | Reserve -> ()
          | Member -> raise (Bad (Printf.sprintf "event %d: replica %d joins while a member" i r))
          | Departed ->
            raise (Bad (Printf.sprintf "event %d: departed replica %d rejoins" i r)));
          if epoch <= !last_epoch then
            raise
              (Bad
                 (Printf.sprintf "event %d: join epoch %d not past epoch %d" i epoch
                    !last_epoch));
          last_epoch := epoch;
          present.(r) <- Member
        | Event.Leave { epoch; _ } ->
          if present.(r) <> Member then
            raise (Bad (Printf.sprintf "event %d: non-member replica %d leaves" i r));
          if down.(r) then
            raise (Bad (Printf.sprintf "event %d: crashed replica %d leaves" i r));
          if epoch <= !last_epoch then
            raise
              (Bad
                 (Printf.sprintf "event %d: leave epoch %d not past epoch %d" i epoch
                    !last_epoch));
          last_epoch := epoch;
          present.(r) <- Departed
        | Event.Do _ -> ())
      t.events;
    Ok ()
  with Bad m -> Error m

let is_well_formed t = match check_well_formed t with Ok () -> true | Error _ -> false

let subsequence t ~keep =
  let acc = ref [] in
  Array.iteri (fun i e -> if keep i then acc := e :: !acc) t.events;
  { t with events = Array.of_list (List.rev !acc) }

let messages_sent t =
  List.filter_map
    (function
      | Event.Send { msg; _ } -> Some msg
      | Event.Do _ | Event.Receive _ | Event.Crash _ | Event.Recover _ | Event.Join _
      | Event.Leave _ -> None)
    (events t)

let total_message_bits t =
  List.fold_left (fun acc m -> acc + Message.size_bits m) 0 (messages_sent t)

let max_message_bits t =
  List.fold_left (fun acc m -> max acc (Message.size_bits m)) 0 (messages_sent t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i e -> Format.fprintf ppf "%3d: %a@," i Event.pp e) t.events;
  Format.fprintf ppf "@]"
