(** Persistent FIFO queue (Okasaki's two-list batched queue).

    [push] is O(1); [pop] is amortized O(1) — the back list is reversed
    into the front at most once per element. The point versus a plain
    list used as a queue is the tail: appending with [xs @ [x]] costs
    O(|xs|) per enqueue and quadratic over a run, which is exactly the
    pattern this replaces in the store hot paths. Being persistent, old
    versions of the queue remain valid after any operation — a property
    the pure store state machines rely on. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n). *)

val push : 'a t -> 'a -> 'a t
(** Enqueue at the back. *)

val pop : 'a t -> ('a * 'a t) option
(** Dequeue from the front (FIFO order). *)

val peek : 'a t -> 'a option

val of_list : 'a list -> 'a t
(** The list head becomes the queue front. *)

val to_list : 'a t -> 'a list
(** Front first. *)

val fold : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a
(** Front-to-back fold. *)
