(** Fixed-capacity mutable bitsets.

    Visibility relations over abstract executions are stored as one bitset
    row per event, which keeps the transitivity and OCC checks cheap even
    for executions with thousands of events. *)

type t

val create : int -> t
(** All bits clear. Capacity is fixed. *)

val capacity : t -> int

val copy : t -> t

val set : t -> int -> unit

val clear : t -> int -> unit

val get : t -> int -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst]. Requires equal capacity. *)

val union_into_changed : dst:t -> t -> bool
(** Like {!union_into}, but reports whether [dst] gained any bit — the
    word-level change test that drives transitive-closure saturation
    without recomputing cardinals. *)

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst src] overwrites [dst] with [src]'s bits (no allocation;
    lets hot loops reuse one scratch row). Requires equal capacity. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] ands [src] into [dst]. Requires equal capacity. *)

val intersects : t -> t -> bool
(** Whether the two sets share any element, word-parallel. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, compatible with {!equal} — usable as a [Hashtbl]
    key via [Hashtbl.Make]. *)

val is_subset : t -> t -> bool
(** [is_subset a b] iff every bit of [a] is set in [b]. *)

val cardinal : t -> int

val is_empty : t -> bool

val min_elt : t -> int option
(** Smallest element, if any. *)

val iter : t -> (int -> unit) -> unit
(** Calls the function on each set bit, ascending. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val to_list : t -> int list

val exists : t -> (int -> bool) -> bool

val for_all : t -> (int -> bool) -> bool
