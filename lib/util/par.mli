(** Deterministic parallel sweeps over OCaml 5 domains.

    The experiment harness, the chaos harness, and the benchmark driver
    all run hundreds of independent seeded tasks; this module fans them
    out over a hand-rolled domain pool (an atomic work index, no
    domainslib dependency) while keeping the results {e bit-identical}
    to the sequential path regardless of the domain count.

    The determinism contract, which every task must honor:

    - a task's result depends only on its input (for seed sweeps: the
      seed, through a private {!Rng.t}), never on shared mutable state
      or on wall-clock time;
    - domain-shared caches in the library (the wire scratch encoder,
      delivery-stats counters) are domain-local ([Domain.DLS]), so
      tasks on different domains cannot observe each other;
    - results land in per-task slots and are published by
      [Domain.join], so the caller reads them race-free and in input
      order.

    See DESIGN.md "Parallel sweep driver" for the full argument. *)

val available_domains : unit -> int
(** The hardware's recommended domain count. *)

val set_default_domains : int -> unit
(** Set the pool size used when [?domains] is omitted (the CLI's [-j]).
    Clamped to at least 1. *)

val default_domains : unit -> int
(** The configured default, or {!available_domains} if never set. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f arr] is [Array.map f arr], computed by [domains]
    domains (default: {!default_domains}, clamped to the array length).
    Result order matches input order; if any task raises, the exception
    of the lowest-index failing task is re-raised after all domains
    join. With [~domains:1] no domain is spawned. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val run_seeds : ?domains:int -> seeds:int list -> (rng:Rng.t -> seed:int -> 'a) -> 'a list
(** Seed sweep: each seed gets a fresh private [Rng.create seed], so the
    per-seed results cannot depend on how seeds are interleaved across
    domains — the output equals the sequential [List.map]. *)
