type 'a t = { front : 'a list; back : 'a list }

let empty = { front = []; back = [] }

let is_empty q = q.front = [] && q.back = []

let length q = List.length q.front + List.length q.back

let push q x = { q with back = x :: q.back }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front })
  | [] -> (
    match List.rev q.back with
    | [] -> None
    | x :: front -> Some (x, { front; back = [] }))

let peek q =
  match q.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev q.back with x :: _ -> Some x | [] -> None)

let of_list l = { front = l; back = [] }

let to_list q = q.front @ List.rev q.back

let fold f acc q =
  let acc = List.fold_left f acc q.front in
  List.fold_left f acc (List.rev q.back)
