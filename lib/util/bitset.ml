type t = { mutable words : int array; cap : int }

let words_for cap = (cap + 62) / 63

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for cap) 0; cap }

let capacity t = t.cap

let copy t = { words = Array.copy t.words; cap = t.cap }

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let clear t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let get t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let union_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let union_into_changed ~dst src =
  if dst.cap <> src.cap then
    invalid_arg "Bitset.union_into_changed: capacity mismatch";
  let changed = ref false in
  for w = 0 to Array.length dst.words - 1 do
    let old = dst.words.(w) in
    let v = old lor src.words.(w) in
    if v <> old then begin
      dst.words.(w) <- v;
      changed := true
    end
  done;
  !changed

let copy_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.copy_into: capacity mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let inter_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.inter_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let intersects a b =
  if a.cap <> b.cap then invalid_arg "Bitset.intersects: capacity mismatch";
  let hit = ref false in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land b.words.(w) <> 0 then hit := true
  done;
  !hit

let equal a b =
  a.cap = b.cap
  &&
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) <> b.words.(w) then ok := false
  done;
  !ok

(* FNV-1a-style word mix; agrees with [equal] (capacity + word contents). *)
let hash t =
  let h = ref (t.cap * 0x01000193) in
  for w = 0 to Array.length t.words - 1 do
    let x = t.words.(w) in
    h := (!h lxor (x land 0x3FFFFFFF)) * 0x01000193;
    h := (!h lxor (x lsr 30)) * 0x01000193
  done;
  !h land max_int

let is_subset a b =
  if a.cap <> b.cap then invalid_arg "Bitset.is_subset: capacity mismatch";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t =
  let empty = ref true in
  for w = 0 to Array.length t.words - 1 do
    if t.words.(w) <> 0 then empty := false
  done;
  !empty

let min_elt t =
  let n = Array.length t.words in
  let rec word w =
    if w = n then None
    else if t.words.(w) = 0 then word (w + 1)
    else
      let x = t.words.(w) in
      let rec bit b = if x land (1 lsl b) <> 0 then Some ((w * 63) + b) else bit (b + 1) in
      bit 0
  in
  word 0

let iter t f =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to 62 do
        if word land (1 lsl b) <> 0 then f ((w * 63) + b)
      done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun i -> acc := f !acc i);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))

exception Found

let exists t p =
  try
    iter t (fun i -> if p i then raise Found);
    false
  with Found -> true

let for_all t p = not (exists t (fun i -> not (p i)))
