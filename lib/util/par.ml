(* Hand-rolled domain pool (domainslib is not a dependency): one atomic
   work index self-schedules array slots across [domains - 1] spawned
   domains plus the calling one. Each task writes only its own result
   slot, and [Domain.join] publishes those writes to the caller, so the
   output is a pure function of the input array — never of the domain
   count or the interleaving. *)

let configured = Atomic.make 0 (* 0 = unset: fall back to the hardware count *)

let available_domains () = Domain.recommended_domain_count ()

let set_default_domains n = Atomic.set configured (max 1 n)

let default_domains () =
  let d = Atomic.get configured in
  if d > 0 then d else available_domains ()

let resolve_domains domains n =
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  min d (max 1 n)

let map ?domains f arr =
  let n = Array.length arr in
  let domains = resolve_domains domains n in
  if domains <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (match f arr.(i) with v -> Ok v | exception e -> Error e));
          go ()
        end
      in
      go ()
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (* re-raise the lowest-index failure, like the sequential path would *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index was claimed before the joins *))
      results
  end

let map_list ?domains f l = Array.to_list (map ?domains f (Array.of_list l))

let run_seeds ?domains ~seeds f =
  map_list ?domains (fun seed -> f ~rng:(Rng.create seed) ~seed) seeds
