open Haec_util
open Haec_model
open Haec_spec

type target = {
  n : int;
  per_replica : Event.do_event array array;
  post_quiescent : (int * int) list;
}

type outcome =
  | Found of Abstract.t
  | No_solution
  | Gave_up

let target_of_execution ?(post_quiescent = []) exec =
  let n = Execution.n_replicas exec in
  let per_replica =
    Array.init n (fun r -> Array.of_list (Execution.do_projection exec r))
  in
  { n; per_replica; post_quiescent }

let target_of_events ~n ?(post_quiescent = []) events =
  let per_replica =
    Array.init n (fun r ->
        Array.of_list (List.filter (fun d -> d.Event.replica = r) events))
  in
  { n; per_replica; post_quiescent }

(* The search inserts events into H one at a time. For each new event we
   enumerate its visibility row: the forced base (everything visible at the
   previous same-replica event, plus that event) plus any subset of the
   other already-inserted events — transitively closed when causal
   consistency is required. A prefix is abandoned as soon as the inserted
   event's recorded response contradicts its specification, which is what
   makes exhaustion feasible. *)

exception Budget_exhausted

module Row_tbl = Hashtbl.Make (struct
  type t = Bitset.t

  let hash = Bitset.hash

  let equal = Bitset.equal
end)

type state = {
  target : target;
  spec_of : int -> Spec.t;
  require_causal : bool;
  max_states : int;
  total : int;
  (* chosen events of H so far, with their source (replica, position) *)
  h : Event.do_event array;
  src : (int * int) array;
  rows : Bitset.t array;
  consumed : int array;
  last_of : int array;
  mutable states : int;
  (* (replica, position) -> is post-quiescent *)
  is_post : (int * int, unit) Hashtbl.t;
  (* canonical operation context -> spec verdict; see [response_consistent] *)
  memo : (int list, bool) Hashtbl.t;
}

let make_state ?(require_causal = true) ?(max_states = 5_000_000) ~spec_of target =
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 target.per_replica in
  let is_post = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace is_post k ()) target.post_quiescent;
  let dummy =
    { Event.replica = 0; obj = 0; op = Op.Read; rval = Op.Ok }
  in
  {
    target;
    spec_of;
    require_causal;
    max_states;
    total;
    h = Array.make (max total 1) dummy;
    src = Array.make (max total 1) (-1, -1);
    rows = Array.make (max total 1) (Bitset.create 0);
    consumed = Array.make target.n 0;
    last_of = Array.make target.n (-1);
    states = 0;
    is_post;
    memo = Hashtbl.create 256;
  }

(* All (replica, position) of update events on object [o]. *)
let updates_on target o =
  let acc = ref [] in
  Array.iteri
    (fun r seq ->
      Array.iteri
        (fun pos d ->
          if d.Event.obj = o && Op.is_update d.Event.op then acc := (r, pos) :: !acc)
        seq)
    target.per_replica;
  !acc

let inserted st (r, pos) = pos < st.consumed.(r)

(* Check event [m]'s recorded response against its spec, where [m]'s
   visibility row has just been fixed. Builds the operation context as a
   small abstract execution over the same-object visible events.

   The same context recurs across many branches of the search (the events
   outside it vary, the context does not), so verdicts are memoized on a
   canonical key: the (replica, position) source of [m] and of each member
   in context order, plus each member's visibility restricted to the
   members as a bitmask over context positions. Sources determine the
   events themselves, so equal keys rebuild identical contexts. *)
let eval_response st m idx =
  let d = st.h.(m) in
    let pos = Hashtbl.create 8 in
    Array.iteri (fun new_i old_i -> Hashtbl.replace pos old_i new_i) idx;
    let vis = ref [] in
    Array.iteri
      (fun new_j old_j ->
        if old_j <> m then
          Bitset.iter st.rows.(old_j) (fun old_i ->
              match Hashtbl.find_opt pos old_i with
              | Some new_i -> vis := (new_i, new_j) :: !vis
              | None -> ())
        else
          Array.iteri
            (fun new_i old_i -> if old_i <> m then vis := (new_i, new_j) :: !vis)
            idx)
      idx;
    let ctx =
      Abstract.create_unchecked ~n:st.target.n
        (Array.map (fun i -> if i = m then d else st.h.(i)) idx)
        ~vis:!vis
    in
    let expected = (st.spec_of d.Event.obj).Spec.apply ~ctx ~target:(Array.length idx - 1) in
    Op.equal_response expected d.Event.rval

let response_consistent st m =
  let d = st.h.(m) in
  if Op.is_update d.Event.op then Op.equal_response d.Event.rval Op.Ok
  else begin
    let members = ref [] in
    Bitset.iter st.rows.(m) (fun i ->
        if st.h.(i).Event.obj = d.Event.obj then members := i :: !members);
    let member_list = List.rev !members in
    let idx = Array.of_list (member_list @ [ m ]) in
    let nmem = Array.length idx - 1 in
    if nmem > 62 then eval_response st m idx
    else begin
      let ctx_pos = Hashtbl.create 8 in
      List.iteri (fun ci old_i -> Hashtbl.replace ctx_pos old_i ci) member_list;
      let mr, mp = st.src.(m) in
      let key = ref [ mp; mr ] in
      List.iter
        (fun old_i ->
          let r, p = st.src.(old_i) in
          let mask = ref 0 in
          Bitset.iter st.rows.(old_i) (fun old_k ->
              match Hashtbl.find_opt ctx_pos old_k with
              | Some ck -> mask := !mask lor (1 lsl ck)
              | None -> ());
          key := !mask :: p :: r :: !key)
        member_list;
      let key = !key in
      match Hashtbl.find_opt st.memo key with
      | Some v -> v
      | None ->
        let v = eval_response st m idx in
        Hashtbl.replace st.memo key v;
        v
    end
  end

(* Enumerate candidate visibility rows for the event about to become index
   [m]: the forced base plus any subset of other inserted events, closed
   under transitivity when required, deduplicated. *)
let candidate_rows st m r =
  let base =
    match st.last_of.(r) with
    | -1 -> Bitset.create (max st.total 1)
    | prev ->
      let b = Bitset.copy st.rows.(prev) in
      Bitset.set b prev;
      b
  in
  let optional = ref [] in
  for i = m - 1 downto 0 do
    if not (Bitset.get base i) then optional := i :: !optional
  done;
  let seen = Row_tbl.create 16 in
  let out = ref [] in
  let emit row =
    (* emitted rows are never mutated afterwards, so they are stable keys *)
    if not (Row_tbl.mem seen row) then begin
      Row_tbl.add seen row ();
      out := row :: !out
    end
  in
  let rec enum row = function
    | [] -> emit row
    | i :: rest ->
      enum row rest;
      let row' = Bitset.copy row in
      Bitset.set row' i;
      if st.require_causal then begin
        Bitset.union_into ~dst:row' st.rows.(i)
      end;
      enum row' rest
  in
  enum base !optional;
  (* smaller rows first: visibility-minimal solutions found sooner.
     Cardinals are computed once up front, not once per comparison. *)
  !out
  |> List.map (fun row -> (Bitset.cardinal row, row))
  |> List.sort (fun (ca, _) (cb, _) -> Int.compare ca cb)
  |> List.map snd

let post_row_ok st m row d =
  (* post-quiescent events must see every update on their object *)
  let needed = updates_on st.target d.Event.obj in
  List.for_all
    (fun (r, pos) ->
      (* find its H index: it must be inserted (scheduling ensured that) *)
      let found = ref None in
      for j = 0 to m - 1 do
        if st.src.(j) = (r, pos) then found := Some j
      done;
      match !found with Some j -> Bitset.get row j | None -> false)
    needed

let run_search st =
  let rec go m =
    st.states <- st.states + 1;
    if st.states > st.max_states then raise Budget_exhausted;
    if m = st.total then begin
      let vis = ref [] in
      for j = 0 to st.total - 1 do
        Bitset.iter st.rows.(j) (fun i -> vis := (i, j) :: !vis)
      done;
      Some (Abstract.create ~n:st.target.n (Array.sub st.h 0 st.total) ~vis:!vis)
    end
    else begin
      let result = ref None in
      let r = ref 0 in
      while !result = None && !r < st.target.n do
        let cr = !r in
        if st.consumed.(cr) < Array.length st.target.per_replica.(cr) then begin
          let pos = st.consumed.(cr) in
          let d = st.target.per_replica.(cr).(pos) in
          let post = Hashtbl.mem st.is_post (cr, pos) in
          let schedulable =
            (not post)
            || List.for_all
                 (fun k -> k = (cr, pos) || inserted st k)
                 (updates_on st.target d.Event.obj)
          in
          if schedulable then begin
            st.h.(m) <- d;
            st.src.(m) <- (cr, pos);
            st.consumed.(cr) <- pos + 1;
            let saved_last = st.last_of.(cr) in
            let rows = candidate_rows st m cr in
            let rec try_rows = function
              | [] -> ()
              | row :: rest ->
                if (not post) || post_row_ok st m row d then begin
                  st.rows.(m) <- row;
                  st.last_of.(cr) <- m;
                  if response_consistent st m then begin
                    match go (m + 1) with
                    | Some _ as s -> result := s
                    | None -> ()
                  end;
                  st.last_of.(cr) <- saved_last
                end;
                if !result = None then try_rows rest
            in
            try_rows rows;
            st.consumed.(cr) <- pos
          end
        end;
        incr r
      done;
      !result
    end
  in
  go 0

let search ?require_causal ?max_states ~spec_of target =
  let st = make_state ?require_causal ?max_states ~spec_of target in
  match run_search st with
  | Some a -> Found a
  | None -> No_solution
  | exception Budget_exhausted -> Gave_up

let count_solutions ?require_causal ?max_states ?(limit = 1000) ~spec_of target =
  let st = make_state ?require_causal ?max_states ~spec_of target in
  let count = ref 0 in
  let exception Limit in
  (* re-run the recursion but never stop at the first solution *)
  let rec go m =
    st.states <- st.states + 1;
    if st.states > st.max_states then raise Budget_exhausted;
    if m = st.total then begin
      incr count;
      if !count >= limit then raise Limit
    end
    else
      for r = 0 to st.target.n - 1 do
        if st.consumed.(r) < Array.length st.target.per_replica.(r) then begin
          let pos = st.consumed.(r) in
          let d = st.target.per_replica.(r).(pos) in
          let post = Hashtbl.mem st.is_post (r, pos) in
          let schedulable =
            (not post)
            || List.for_all
                 (fun k -> k = (r, pos) || inserted st k)
                 (updates_on st.target d.Event.obj)
          in
          if schedulable then begin
            st.h.(m) <- d;
            st.src.(m) <- (r, pos);
            st.consumed.(r) <- pos + 1;
            let saved_last = st.last_of.(r) in
            List.iter
              (fun row ->
                if (not post) || post_row_ok st m row d then begin
                  st.rows.(m) <- row;
                  st.last_of.(r) <- m;
                  if response_consistent st m then go (m + 1);
                  st.last_of.(r) <- saved_last
                end)
              (candidate_rows st m r);
            st.consumed.(r) <- pos
          end
        end
      done
  in
  (try go 0 with Limit | Budget_exhausted -> ());
  !count
