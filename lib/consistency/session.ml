open Haec_util
open Haec_model
open Haec_spec

type report = {
  read_your_writes : (unit, string) result;
  monotonic_reads : (unit, string) result;
  monotonic_writes : (unit, string) result;
  writes_follow_reads : (unit, string) result;
}

(* Frozen quantifier-literal implementations, kept verbatim as the oracle
   for the bitset-based fast paths below (and as the authoritative witness
   scan when a fast path reports a violation). Do not optimize them. *)

let check_read_your_writes_reference a =
  let len = Abstract.length a in
  let exception Bad of string in
  try
    for w = 0 to len - 1 do
      let dw = Abstract.event a w in
      if Op.is_update dw.Event.op then
        for e = w + 1 to len - 1 do
          let de = Abstract.event a e in
          if
            de.Event.replica = dw.Event.replica
            && de.Event.obj = dw.Event.obj
            && not (Abstract.vis a w e)
          then raise (Bad (Printf.sprintf "own update %d invisible to later event %d" w e))
        done
    done;
    Ok ()
  with Bad m -> Error m

let check_monotonic_reads_reference a =
  let len = Abstract.length a in
  let exception Bad of string in
  try
    for e = 0 to len - 1 do
      let de = Abstract.event a e in
      for e' = e + 1 to len - 1 do
        let de' = Abstract.event a e' in
        if de'.Event.replica = de.Event.replica then
          List.iter
            (fun w ->
              if not (Abstract.vis a w e') then
                raise
                  (Bad (Printf.sprintf "update %d visible to %d but not to later %d" w e e')))
            (Abstract.vis_preds a e)
      done
    done;
    Ok ()
  with Bad m -> Error m

let check_monotonic_writes_reference a =
  let len = Abstract.length a in
  let exception Bad of string in
  try
    for w = 0 to len - 1 do
      let dw = Abstract.event a w in
      if Op.is_update dw.Event.op then
        (* earlier updates of the issuer, on any object *)
        for w' = 0 to w - 1 do
          let dw' = Abstract.event a w' in
          if dw'.Event.replica = dw.Event.replica && Op.is_update dw'.Event.op then
            for e = w + 1 to len - 1 do
              if Abstract.vis a w e && not (Abstract.vis a w' e) then
                raise
                  (Bad
                     (Printf.sprintf
                        "update %d visible to %d without the issuer's earlier update %d" w
                        e w'))
            done
        done
    done;
    Ok ()
  with Bad m -> Error m

let check_writes_follow_reads_reference a =
  let len = Abstract.length a in
  let exception Bad of string in
  try
    for w = 0 to len - 1 do
      let dw = Abstract.event a w in
      if Op.is_update dw.Event.op then
        (* updates visible to the issuer at issue time, on any object *)
        List.iter
          (fun w' ->
            let dw' = Abstract.event a w' in
            if Op.is_update dw'.Event.op then
              for e = w + 1 to len - 1 do
                if Abstract.vis a w e && not (Abstract.vis a w' e) then
                  raise
                    (Bad
                       (Printf.sprintf
                          "update %d visible to %d without its observed predecessor %d" w e
                          w'))
              done)
          (Abstract.vis_preds a w)
    done;
    Ok ()
  with Bad m -> Error m

let check_reference a =
  {
    read_your_writes = check_read_your_writes_reference a;
    monotonic_reads = check_monotonic_reads_reference a;
    monotonic_writes = check_monotonic_writes_reference a;
    writes_follow_reads = check_writes_follow_reads_reference a;
  }

(* Bit-parallel fast paths. Each guarantee reduces to subset tests over
   whole visibility rows:

   - RYW: walking each replica in H order with an accumulator of its own
     updates per object, every event must see the whole accumulator.
   - MR: visibility at a replica only grows, and [⊆] is transitive, so
     checking consecutive same-replica pairs covers all pairs.
   - MW: [w] visible at [e] must drag along the issuer's earlier update
     [w']; in transpose rows that is [seen(w) ⊆ seen(w')], and again
     consecutive same-replica update pairs suffice by transitivity.
   - WFR: same subset test, for every update [w'] visible to [w]'s issuer
     when issuing.

   MW/WFR via full transpose rows quantify over *all* events seeing [w],
   whereas the definitions quantify only over [e] after [w]; on any
   order-respecting execution (Definition 4 condition 3) these coincide.
   The fast paths are therefore conservative: a fast pass implies the
   reference passes, and a fast failure re-runs the reference checker both
   to confirm and to produce the same witness message it always produced. *)

let build_rows a =
  let len = Abstract.length a in
  Array.init len (fun e -> Abstract.vis_row a e)

let build_seen rows =
  let len = Array.length rows in
  let seen = Array.init len (fun _ -> Bitset.create len) in
  for e = 0 to len - 1 do
    Bitset.iter rows.(e) (fun i -> Bitset.set seen.(i) e)
  done;
  seen

let ryw_holds a rows =
  let len = Abstract.length a in
  let acc : (int * int, Bitset.t) Hashtbl.t = Hashtbl.create 16 in
  let ok = ref true in
  let e = ref 0 in
  while !ok && !e < len do
    let d = Abstract.event a !e in
    let key = (d.Event.replica, d.Event.obj) in
    (match Hashtbl.find_opt acc key with
    | Some own -> if not (Bitset.is_subset own rows.(!e)) then ok := false
    | None -> ());
    if !ok && Op.is_update d.Event.op then begin
      let own =
        match Hashtbl.find_opt acc key with
        | Some own -> own
        | None ->
          let own = Bitset.create len in
          Hashtbl.add acc key own;
          own
      in
      Bitset.set own !e
    end;
    incr e
  done;
  !ok

let mr_holds a rows =
  let len = Abstract.length a in
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  let e = ref 0 in
  while !ok && !e < len do
    let d = Abstract.event a !e in
    (match Hashtbl.find_opt last d.Event.replica with
    | Some p -> if not (Bitset.is_subset rows.(p) rows.(!e)) then ok := false
    | None -> ());
    Hashtbl.replace last d.Event.replica !e;
    incr e
  done;
  !ok

let mw_holds a seen =
  let len = Abstract.length a in
  let last_upd : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < len do
    let d = Abstract.event a !w in
    if Op.is_update d.Event.op then begin
      (match Hashtbl.find_opt last_upd d.Event.replica with
      | Some w' -> if not (Bitset.is_subset seen.(!w) seen.(w')) then ok := false
      | None -> ());
      Hashtbl.replace last_upd d.Event.replica !w
    end;
    incr w
  done;
  !ok

let wfr_holds a rows seen =
  let len = Abstract.length a in
  let is_upd = Array.init len (fun i -> Op.is_update (Abstract.event a i).Event.op) in
  let exception Bad in
  try
    for w = 0 to len - 1 do
      if is_upd.(w) then
        Bitset.iter rows.(w) (fun w' ->
            if is_upd.(w') && not (Bitset.is_subset seen.(w) seen.(w')) then raise Bad)
    done;
    true
  with Bad -> false

let check a =
  let rows = build_rows a in
  let seen = build_seen rows in
  let guard fast reference = if fast () then Ok () else reference a in
  {
    read_your_writes = guard (fun () -> ryw_holds a rows) check_read_your_writes_reference;
    monotonic_reads = guard (fun () -> mr_holds a rows) check_monotonic_reads_reference;
    monotonic_writes = guard (fun () -> mw_holds a seen) check_monotonic_writes_reference;
    writes_follow_reads =
      guard (fun () -> wfr_holds a rows seen) check_writes_follow_reads_reference;
  }

let entries r =
  [
    ("read-your-writes", r.read_your_writes);
    ("monotonic-reads", r.monotonic_reads);
    ("monotonic-writes", r.monotonic_writes);
    ("writes-follow-reads", r.writes_follow_reads);
  ]

let all_hold r = List.for_all (fun (_, res) -> res = Ok ()) (entries r)

let holding r =
  List.filter_map (fun (name, res) -> if res = Ok () then Some name else None) (entries r)

let pp ppf r =
  List.iter
    (fun (name, res) ->
      match res with
      | Ok () -> Format.fprintf ppf "%s: ok@," name
      | Error m -> Format.fprintf ppf "%s: %s@," name m)
    (entries r)
