(** Polynomial-time causal-consistency checking of register histories by
    bad-pattern detection (after Bouajjani, Enea, Guerraoui, Hamza, "On
    verifying causal consistency", POPL 2017).

    The exhaustive {!Search} decides compliance exactly but only for a
    handful of events; this module scales to arbitrary histories for the
    *register* (single-value read) case with differentiated writes. It
    derives the reads-from relation from returned values, saturates the
    causal order [co = (session-order ∪ reads-from)+], and looks for the
    bad patterns that characterize non-causally-consistent register
    histories:

    - [Thin_air_read]: a read returns a value nobody wrote;
    - [Cyclic_co]: session order and reads-from are cyclically dependent;
    - [Write_co_init_read]: a read returns the initial (empty) value even
      though a same-object write causally precedes it;
    - [Write_co_read]: a read returns a write that is causally overwritten
      (w1 -> w2 -> r in [co] with w1, w2 same-object writes and r reading
      w1);
    - [Cyclic_cf] (causal convergence only): the conflict/arbitration
      order forced by reads — [w1 -> w2] whenever some read returns [w2]
      while [w1] causally precedes the read — is cyclic with [co], so no
      single total order can arbitrate the conflicts. The paper's
      framework resolves register conflicts by the one total order [H] of
      the abstract execution, so its register model is causal
      *convergence*; plain causal consistency omits this pattern.

    A returned pattern is a genuine violation (soundness). For histories
    where every read returns at most one value and writes are
    differentiated, absence of bad patterns means the history is causally
    consistent as a register history. Multi-value (MVR) reads are out of
    scope and reported as [Unsupported]. *)

open Haec_model

type bad_pattern =
  | Thin_air_read of { read : int }
  | Cyclic_co of { witness : int }
      (** an event on a causal cycle *)
  | Write_co_init_read of { read : int; write : int }
  | Write_co_read of { read : int; overwritten : int; overwriting : int }
  | Cyclic_cf of { witness : int }
      (** a write on a cycle of causality + forced arbitration *)

type model =
  [ `Cc  (** plain causal consistency *)
  | `Ccv  (** causal convergence: the paper's register framework *) ]

type verdict =
  | Consistent  (** no bad pattern: causally consistent register history *)
  | Violation of bad_pattern
  | Unsupported of string
      (** multi-value reads or duplicated write values *)

val check_events : ?model:model -> n:int -> Event.do_event list -> verdict
(** Indices in the verdict refer to positions in the given list.
    [model] defaults to [`Ccv]. Internally the causal order is saturated
    word-parallel over bitset adjacency rows and the bad patterns are
    row-intersection queries; verdicts (including witness indices) are
    identical to {!check_events_reference}. *)

val check_events_reference : ?model:model -> n:int -> Event.do_event list -> verdict
(** The frozen pre-bit-parallel implementation (list scans, cardinal-based
    saturation). Exists solely as the oracle for randomized equivalence
    testing of {!check_events}; never use it on large histories. *)

val check : ?model:model -> Execution.t -> verdict
(** Convenience: checks the do events of an execution. *)

val pp_verdict : Format.formatter -> verdict -> unit
