open Haec_util
open Haec_model

type bad_pattern =
  | Thin_air_read of { read : int }
  | Cyclic_co of { witness : int }
  | Write_co_init_read of { read : int; write : int }
  | Write_co_read of { read : int; overwritten : int; overwriting : int }
  | Cyclic_cf of { witness : int }

type model =
  [ `Cc
  | `Ccv ]

type verdict =
  | Consistent
  | Violation of bad_pattern
  | Unsupported of string

let pp_verdict ppf = function
  | Consistent -> Format.pp_print_string ppf "causally consistent (register history)"
  | Violation (Thin_air_read { read }) ->
    Format.fprintf ppf "violation: read %d returns a value nobody wrote" read
  | Violation (Cyclic_co { witness }) ->
    Format.fprintf ppf "violation: causal order is cyclic (through event %d)" witness
  | Violation (Write_co_init_read { read; write }) ->
    Format.fprintf ppf
      "violation: read %d returns the initial value although write %d causally precedes it"
      read write
  | Violation (Write_co_read { read; overwritten; overwriting }) ->
    Format.fprintf ppf
      "violation: read %d returns write %d, causally overwritten by write %d" read
      overwritten overwriting
  | Violation (Cyclic_cf { witness }) ->
    Format.fprintf ppf
      "violation: causality plus forced arbitration is cyclic (through write %d) - no single conflict order exists"
      witness
  | Unsupported m -> Format.fprintf ppf "unsupported history: %s" m

exception Bad of verdict

(* Frozen list-based implementation, kept verbatim as the oracle for the
   bit-parallel rewrite below (see test_causal_hist's randomized
   equivalence property). Do not optimize it. *)
let check_events_reference ?(model = `Ccv) ~n events =
  let evs = Array.of_list events in
  let len = Array.length evs in
  try
    (* map values to their unique writers *)
    let writer : (int * Value.t, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun i (d : Event.do_event) ->
        match d.Event.op with
        | Op.Write v | Op.Add v ->
          if Hashtbl.mem writer (d.Event.obj, v) then
            raise (Bad (Unsupported (Format.asprintf "duplicated write value %a" Value.pp v)));
          Hashtbl.replace writer (d.Event.obj, v) i
        | Op.Read | Op.Remove _ -> ())
      evs;
    (* reads-from, derived from responses *)
    let rf = Array.make len None in
    Array.iteri
      (fun i (d : Event.do_event) ->
        if Op.is_read d.Event.op then
          match d.Event.rval with
          | Op.Ok -> raise (Bad (Unsupported "read returned ok"))
          | Op.Vals [] -> ()
          | Op.Vals [ v ] -> (
            match Hashtbl.find_opt writer (d.Event.obj, v) with
            | Some w -> rf.(i) <- Some w
            | None -> raise (Bad (Violation (Thin_air_read { read = i }))))
          | Op.Vals _ ->
            raise (Bad (Unsupported "multi-value read (MVR history): use Search instead")))
      evs;
    (* co = transitive closure of session order + reads-from *)
    let succs = Array.make len [] in
    let last_at = Hashtbl.create 8 in
    Array.iteri
      (fun i (d : Event.do_event) ->
        (match Hashtbl.find_opt last_at d.Event.replica with
        | Some j -> succs.(j) <- i :: succs.(j)
        | None -> ());
        Hashtbl.replace last_at d.Event.replica i;
        match rf.(i) with Some w -> succs.(w) <- i :: succs.(w) | None -> ())
      evs;
    (* forward reachability per node; cycle iff node reaches itself *)
    let reach = Array.init len (fun _ -> Bitset.create (max len 1)) in
    (* process in reverse topological attempt: repeated passes until fixpoint
       (len is modest; simple worklist) *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = len - 1 downto 0 do
        List.iter
          (fun j ->
            let before = Bitset.cardinal reach.(i) in
            Bitset.set reach.(i) j;
            Bitset.union_into ~dst:reach.(i) reach.(j);
            if Bitset.cardinal reach.(i) <> before then changed := true)
          succs.(i)
      done
    done;
    for i = 0 to len - 1 do
      if Bitset.get reach.(i) i then raise (Bad (Violation (Cyclic_co { witness = i })))
    done;
    let co i j = Bitset.get reach.(i) j in
    (* bad patterns over reads *)
    Array.iteri
      (fun r (d : Event.do_event) ->
        if Op.is_read d.Event.op then
          match rf.(r) with
          | None ->
            (* reads initial value: no same-object write may causally precede *)
            for w = 0 to len - 1 do
              let dw = evs.(w) in
              if dw.Event.obj = d.Event.obj && Op.is_update dw.Event.op && co w r then
                raise (Bad (Violation (Write_co_init_read { read = r; write = w })))
            done
          | Some w1 ->
            (* the write read from must not be causally overwritten *)
            for w2 = 0 to len - 1 do
              let dw2 = evs.(w2) in
              if
                w2 <> w1
                && dw2.Event.obj = d.Event.obj
                && Op.is_update dw2.Event.op
                && co w1 w2 && co w2 r
              then
                raise
                  (Bad (Violation (Write_co_read { read = r; overwritten = w1; overwriting = w2 })))
            done)
      evs;
    (* causal convergence: the conflict order cf forced by reads --
       w1 -> w2 when a read of w2 has w1 in its causal past -- must embed,
       together with co, into one total order: co ∪ cf acyclic *)
    if model = `Ccv then begin
      let cf_succs = Array.make len [] in
      Array.iteri
        (fun r (d : Event.do_event) ->
          match rf.(r) with
          | Some w2 ->
            for w1 = 0 to len - 1 do
              let d1 = evs.(w1) in
              if
                w1 <> w2
                && d1.Event.obj = d.Event.obj
                && Op.is_update d1.Event.op && co w1 r
              then cf_succs.(w1) <- w2 :: cf_succs.(w1)
            done
          | None -> ())
        evs;
      let reach2 = Array.init len (fun i -> Bitset.copy reach.(i)) in
      let changed = ref true in
      while !changed do
        changed := false;
        for i = len - 1 downto 0 do
          List.iter
            (fun j ->
              let before = Bitset.cardinal reach2.(i) in
              Bitset.set reach2.(i) j;
              Bitset.union_into ~dst:reach2.(i) reach2.(j);
              if Bitset.cardinal reach2.(i) <> before then changed := true)
            (succs.(i) @ cf_succs.(i))
        done
      done;
      for i = 0 to len - 1 do
        if Bitset.get reach2.(i) i then raise (Bad (Violation (Cyclic_cf { witness = i })))
      done
    end;
    ignore n;
    Consistent
  with Bad v -> v

(* The production checker. Same verdicts (including witness indices) as
   [check_events_reference], but every quadratic scan is word-parallel:

   - the causal order [co] is saturated with {!Bitset.union_into_changed}
     (one or-and-compare per word) instead of recomputing cardinals;
   - [co]'s transpose [pred] (who causally precedes me) is built once, so
     each bad-pattern query is a 2- or 3-row intersection: a read of the
     initial value is bad iff [pred(read) ∩ writes(obj)] is non-empty, a
     read of [w1] is bad iff [reach(w1) ∩ pred(read) ∩ writes(obj)] is —
     [Bitset.min_elt] of the mask is exactly the witness the ascending
     reference scan reports;
   - the forced conflict edges of causal convergence enumerate only the
     bits of [pred(read) ∩ writes(obj)] instead of every event. *)
let check_events ?(model = `Ccv) ~n events =
  let evs = Array.of_list events in
  let len = Array.length evs in
  try
    (* map values to their unique writers *)
    let writer : (int * Value.t, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun i (d : Event.do_event) ->
        match d.Event.op with
        | Op.Write v | Op.Add v ->
          if Hashtbl.mem writer (d.Event.obj, v) then
            raise (Bad (Unsupported (Format.asprintf "duplicated write value %a" Value.pp v)));
          Hashtbl.replace writer (d.Event.obj, v) i
        | Op.Read | Op.Remove _ -> ())
      evs;
    (* reads-from, derived from responses *)
    let rf = Array.make len None in
    Array.iteri
      (fun i (d : Event.do_event) ->
        if Op.is_read d.Event.op then
          match d.Event.rval with
          | Op.Ok -> raise (Bad (Unsupported "read returned ok"))
          | Op.Vals [] -> ()
          | Op.Vals [ v ] -> (
            match Hashtbl.find_opt writer (d.Event.obj, v) with
            | Some w -> rf.(i) <- Some w
            | None -> raise (Bad (Violation (Thin_air_read { read = i }))))
          | Op.Vals _ ->
            raise (Bad (Unsupported "multi-value read (MVR history): use Search instead")))
      evs;
    (* co = transitive closure of session order + reads-from *)
    let succs = Array.make len [] in
    let last_at = Hashtbl.create 8 in
    Array.iteri
      (fun i (d : Event.do_event) ->
        (match Hashtbl.find_opt last_at d.Event.replica with
        | Some j -> succs.(j) <- i :: succs.(j)
        | None -> ());
        Hashtbl.replace last_at d.Event.replica i;
        match rf.(i) with Some w -> succs.(w) <- i :: succs.(w) | None -> ())
      evs;
    let cap = max len 1 in
    (* word-level saturation to a fixpoint; session edges point forward in
       H, so the descending pass converges in one sweep plus one per
       backward reads-from edge on a cycle candidate *)
    let saturate rows edges =
      let changed = ref true in
      while !changed do
        changed := false;
        for i = len - 1 downto 0 do
          List.iter
            (fun j ->
              if not (Bitset.get rows.(i) j) then begin
                Bitset.set rows.(i) j;
                changed := true
              end;
              if Bitset.union_into_changed ~dst:rows.(i) rows.(j) then changed := true)
            edges.(i)
        done
      done
    in
    let reach = Array.init len (fun _ -> Bitset.create cap) in
    saturate reach succs;
    for i = 0 to len - 1 do
      if Bitset.get reach.(i) i then raise (Bad (Violation (Cyclic_co { witness = i })))
    done;
    (* pred = transpose of reach: pred(j) = {i | co i j} *)
    let pred = Array.init len (fun _ -> Bitset.create cap) in
    for i = 0 to len - 1 do
      Bitset.iter reach.(i) (fun j -> Bitset.set pred.(j) i)
    done;
    (* per-object bitsets of update events *)
    let writes_on = Hashtbl.create 8 in
    Array.iteri
      (fun i (d : Event.do_event) ->
        if Op.is_update d.Event.op then begin
          let b =
            match Hashtbl.find_opt writes_on d.Event.obj with
            | Some b -> b
            | None ->
              let b = Bitset.create cap in
              Hashtbl.replace writes_on d.Event.obj b;
              b
          in
          Bitset.set b i
        end)
      evs;
    let writes_of obj =
      match Hashtbl.find_opt writes_on obj with
      | Some b -> Some b
      | None -> None
    in
    let mask = Bitset.create cap in
    (* bad patterns over reads *)
    Array.iteri
      (fun r (d : Event.do_event) ->
        if Op.is_read d.Event.op then
          match writes_of d.Event.obj with
          | None -> ()
          | Some writes -> (
            match rf.(r) with
            | None ->
              (* reads initial value: no same-object write may causally
                 precede *)
              Bitset.copy_into ~dst:mask pred.(r);
              Bitset.inter_into ~dst:mask writes;
              (match Bitset.min_elt mask with
              | Some w -> raise (Bad (Violation (Write_co_init_read { read = r; write = w })))
              | None -> ())
            | Some w1 ->
              (* the write read from must not be causally overwritten; w1
                 itself is never in reach(w1) (the cycle check passed) *)
              Bitset.copy_into ~dst:mask reach.(w1);
              Bitset.inter_into ~dst:mask pred.(r);
              Bitset.inter_into ~dst:mask writes;
              (match Bitset.min_elt mask with
              | Some w2 ->
                raise
                  (Bad (Violation (Write_co_read { read = r; overwritten = w1; overwriting = w2 })))
              | None -> ())))
      evs;
    (* causal convergence: the conflict order cf forced by reads --
       w1 -> w2 when a read of w2 has w1 in its causal past -- must embed,
       together with co, into one total order: co ∪ cf acyclic *)
    if model = `Ccv then begin
      let cf_succs = Array.make len [] in
      Array.iteri
        (fun r (d : Event.do_event) ->
          match rf.(r) with
          | Some w2 -> (
            match writes_of d.Event.obj with
            | None -> ()
            | Some writes ->
              Bitset.copy_into ~dst:mask pred.(r);
              Bitset.inter_into ~dst:mask writes;
              Bitset.iter mask (fun w1 ->
                  if w1 <> w2 then cf_succs.(w1) <- w2 :: cf_succs.(w1)))
          | None -> ())
        evs;
      let both = Array.init len (fun i -> succs.(i) @ cf_succs.(i)) in
      let reach2 = Array.init len (fun i -> Bitset.copy reach.(i)) in
      saturate reach2 both;
      for i = 0 to len - 1 do
        if Bitset.get reach2.(i) i then raise (Bad (Violation (Cyclic_cf { witness = i })))
      done
    end;
    ignore n;
    Consistent
  with Bad v -> v

let check ?model exec =
  check_events ?model ~n:(Execution.n_replicas exec)
    (List.map snd (Execution.do_events exec))
