(** The four session guarantees (Terry et al.), as predicates on abstract
    executions.

    These are the classic consistency conditions strictly between eventual
    and causal consistency; causal consistency implies all four. Checking
    them on witness abstract executions locates each store on the
    consistency ladder below the paper's OCC ceiling (experiment E13).

    The guarantees are evaluated per replica ("session" = one replica's
    sequence of operations, matching the paper's model where clients talk
    to one replica). *)

open Haec_spec

type report = {
  read_your_writes : (unit, string) result;
      (** every update by a replica is visible to its own later same-object
          operations *)
  monotonic_reads : (unit, string) result;
      (** updates visible to an operation stay visible to later operations
          at the same replica (Definition 4 condition 2 makes this
          structural for any abstract execution; on a witness it checks
          the store never "forgets") *)
  monotonic_writes : (unit, string) result;
      (** a replica's own updates are visible in the order issued: an
          update visible anywhere implies the issuer's earlier updates
          (any object) are visible there too *)
  writes_follow_reads : (unit, string) result;
      (** an update is never visible without the updates (any object) that
          were visible to its issuer when issuing it. Together with
          transitive closure this is what separates causal delivery from
          per-object version-vector repair *)
}

val check : Abstract.t -> report
(** Evaluates the guarantees by word-parallel subset tests over visibility
    rows and their transpose; any reported violation is re-derived (with
    the same witness message) by the reference scan. *)

val check_reference : Abstract.t -> report
(** The frozen quantifier-literal implementation, kept as the oracle for
    randomized equivalence testing of {!check}; never use it on large
    executions. *)

val all_hold : report -> bool

val holding : report -> string list
(** Names of the guarantees that hold. *)

val pp : Format.formatter -> report -> unit
