open Haec_model
open Haec_spec

let check_visible_from a ~quiescent_at =
  let len = Abstract.length a in
  let exception Bad of string in
  try
    for e = 0 to min quiescent_at len - 1 do
      let d = Abstract.event a e in
      if Op.is_update d.Event.op then
        for e' = max quiescent_at (e + 1) to len - 1 do
          let d' = Abstract.event a e' in
          if d'.Event.obj = d.Event.obj && not (Abstract.vis a e e') then
            raise
              (Bad
                 (Printf.sprintf
                    "update %d not visible to post-quiescence event %d on object %d" e
                    e' d.Event.obj))
        done
    done;
    Ok ()
  with Bad m -> Error m

let is_visible_from a ~quiescent_at =
  match check_visible_from a ~quiescent_at with Ok () -> true | Error _ -> false

let invisibility_count a e =
  let d = Abstract.event a e in
  let count = ref 0 in
  for e' = e + 1 to Abstract.length a - 1 do
    let d' = Abstract.event a e' in
    if d'.Event.obj = d.Event.obj && not (Abstract.vis a e e') then incr count
  done;
  !count

let check_reads_agree exec ~suffix =
  let len = Execution.length exec in
  let responses : (int, Op.response * int) Hashtbl.t = Hashtbl.create 16 in
  let exception Bad of string in
  try
    for i = max 0 (len - suffix) to len - 1 do
      match Execution.get exec i with
      | Event.Do d when Op.is_read d.Event.op -> (
        match Hashtbl.find_opt responses d.Event.obj with
        | None -> Hashtbl.replace responses d.Event.obj (d.Event.rval, i)
        | Some (rv, first) ->
          if not (Op.equal_response rv d.Event.rval) then
            raise
              (Bad
                 (Format.asprintf
                    "reads of object %d disagree: event %d returned %a, event %d returned %a"
                    d.Event.obj first Op.pp_response rv i Op.pp_response d.Event.rval)))
      | Event.Do _ | Event.Send _ | Event.Receive _ | Event.Crash _ | Event.Recover _
      | Event.Join _ | Event.Leave _ -> ()
    done;
    Ok ()
  with Bad m -> Error m
