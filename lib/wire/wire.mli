(** Compact binary wire format.

    Every message a store broadcasts is serialized through this module, so
    that the message-size measurements of the Theorem 12 experiment count
    real bytes rather than abstract estimates.

    Integers use LEB128 varints (7 payload bits per byte); signed integers
    are zigzag-mapped first, so small magnitudes of either sign stay short.
    Lists and strings are length-prefixed.

    {b Frame versions.} [V1] is the layout above. [V2] adds compressed
    layouts — bit-packed / run-length vector clocks, sparse delta vectors,
    delta digests, grouped repair runs — each self-describing behind a
    leading [0x00] marker byte, a position where every v1 encoding puts a
    varint that is at least 1. Decoders are therefore version-agnostic
    (anything decodes both formats); {!Version} only governs what gets
    {e emitted}. *)

module Version : sig
  type t = V1 | V2

  val to_int : t -> int

  val of_int : int -> t option

  val name : t -> string

  val current : unit -> t
  (** The process-global emission default, initially [V2]. Read when a
      replica state is created or a message encoded. *)

  val set : t -> unit
  (** Set the global default. Call once at startup, before worker domains
      spawn. *)

  val scoped : t -> (unit -> 'a) -> 'a
  (** [scoped v f] runs [f] with the default set to [v], restoring the
      previous default on return or exception. For experiments comparing
      v1 against v2 in one process. *)
end

module Encoder : sig
  type t

  val create : unit -> t

  val uint : t -> int -> unit
  (** LEB128 varint. Requires a non-negative argument. *)

  val uint_array : t -> int array -> unit
  (** Length-prefixed array of varints, fused into a single reservation
      and write loop. Requires non-negative entries. *)

  val packed_array : t -> int array -> width:int -> unit
  (** Fixed-width bit packing, little-endian bit order, {e no} length
      prefix — the caller frames [Array.length] itself. Requires
      [1 <= width <= 56] and every entry within [width] bits (raises
      [Invalid_argument] otherwise). *)

  val int : t -> int -> unit
  (** Zigzag + LEB128; accepts any int. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Length-prefixed sequence. *)

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit

  val to_string : t -> string
  (** The bytes accumulated so far. *)

  val size_bytes : t -> int

  val size_bits : t -> int
end

module Decoder : sig
  type t
  (** A [pos, limit) window over a shared input string; sub-decoders
      ({!sub}) are views into the parent's bytes, never copies. *)

  exception Malformed of string
  (** Raised when the input cannot be decoded: truncation, varint overflow,
      or a length prefix exceeding the remaining input. *)

  val of_string : string -> t

  val of_sub : string -> pos:int -> len:int -> t
  (** A decoder over the window [\[pos, pos+len)] of the string, without
      copying. Raises [Invalid_argument] if the window is out of bounds. *)

  val uint : t -> int

  val uint_array : t -> int array
  (** Fused inverse of {!Encoder.uint_array}: one length read, one bounds
      check, one tight loop. *)

  val packed_array : t -> n:int -> width:int -> int array
  (** Inverse of {!Encoder.packed_array} for [n] entries of [width] bits.
      The byte budget is validated before allocating. *)

  val int : t -> int

  val bool : t -> bool

  val string : t -> string

  val skip_string : t -> unit
  (** Advance past a length-prefixed string without copying it — the
      zero-copy path for classifiers that only need the envelope shape. *)

  val sub : t -> int -> t
  (** [sub t len] is a child decoder viewing the next [len] bytes; the
      parent skips past them. Raises [Malformed] if fewer remain. *)

  val peek : t -> int
  (** The next byte without consuming it. Raises [Malformed] at end of
      input. The v2 format dispatch: a leading [0x00] marks a compressed
      layout, anything else is a v1 varint. *)

  val list : t -> (t -> 'a) -> 'a list

  val array : t -> (t -> 'a) -> 'a array

  val option : t -> (t -> 'a) -> 'a option

  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b

  val remaining : t -> int
  (** Bytes of input not yet consumed. Lets length-prefixed decoders
      reject a bogus count before allocating for it. *)

  val at_end : t -> bool

  val expect_end : t -> unit
  (** Raises [Malformed] unless all input has been consumed. *)
end

module Frame : sig
  (** Checksummed transport envelope.

      The fault-injection harness corrupts message bytes in transit; a
      store must never apply corrupted state silently. Sealing a payload
      appends a CRC-32 so that {!unseal} rejects any in-flight mutation as
      {!Decoder.Malformed} — the same exception stores raise on
      structurally invalid input — modelling the checksum every real
      transport performs before bytes reach the application. *)

  val crc32 : string -> int
  (** Reflected IEEE CRC-32 of the bytes, in [0, 2^32). *)

  val seal : string -> string
  (** Length-prefixed payload followed by its CRC-32. Runs through the
      pooled per-domain scratch encoder, so sealing allocates nothing
      beyond the result. *)

  val unseal : string -> string
  (** Inverse of {!seal}. Raises {!Decoder.Malformed} on truncation,
      trailing garbage, or checksum mismatch. *)
end

module Gossip : sig
  (** Message kinds of the anti-entropy protocol
      ({!Haec_store.Anti_entropy}). The tag space is fixed here, at the
      wire layer, so stores, telemetry and tests agree on the envelope
      without depending on each other: an anti-entropy payload is a
      length-prefixed sequence of tagged items — seq-numbered {!Update}
      payloads, version-vector {!Digest}s, targeted {!Repair_request}s and
      batched {!Repair} payloads answering them. Dynamic membership adds
      two control kinds: {!Hello} announces a replica entering the set at
      a given epoch (a joiner's first digest rides with it, triggering the
      bootstrap state transfer), {!Goodbye} announces a graceful leave.
      Wire v2 adds two more: {!Digest_delta} carries only the [have]
      entries that changed since the sender's last digest, and
      {!Repair_runs} carries one merged per-peer repair as per-origin runs
      of consecutive sequence numbers. *)

  type kind =
    | Update
    | Digest
    | Repair_request
    | Repair
    | Hello
    | Goodbye
    | Digest_delta
    | Repair_runs

  val tag : kind -> int

  val name : kind -> string

  val encode_kind : Encoder.t -> kind -> unit

  val decode_kind : Decoder.t -> kind
  (** Raises {!Decoder.Malformed} on an unknown tag. *)
end

val encode : (Encoder.t -> unit) -> string
(** [encode f] runs [f] on a fresh encoder and returns the bytes. *)

val decode : string -> (Decoder.t -> 'a) -> 'a
(** [decode s f] decodes with [f] and checks the whole input was consumed.
    Raises {!Decoder.Malformed} on any framing error. *)

val size_bits : string -> int
(** Size of a serialized message in bits (8 per byte). *)
