module Encoder = struct
  (* A bare [Bytes.t] grown in place: [Buffer] pays a closure-guarded
     bounds check and a function call per byte, which dominates varint
     encoding where almost every write is a single byte. Writes go
     through [add_byte] after an explicit [reserve], so the unsafe
     accesses are bounds-checked in one place, once per value. *)
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 64; len = 0 }

  let reset t = t.len <- 0

  let grow t needed =
    let cap = ref (Bytes.length t.buf * 2) in
    while t.len + needed > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.buf 0 b 0 t.len;
    t.buf <- b

  let[@inline] reserve t n = if t.len + n > Bytes.length t.buf then grow t n

  (* callers must [reserve] first *)
  let[@inline] add_byte t c =
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr c);
    t.len <- t.len + 1

  (* Emit the word as an unsigned bit pattern (logical shifts), so zigzag
     patterns whose top bit is set — from [max_int]/[min_int] — survive.
     The loop writes through a local [buf] binding and stores [len] once
     at the end: going through [add_byte] would pay a call plus a field
     store per byte, which dominates on mostly-1-and-2-byte varints. *)
  let uint_bits t n =
    reserve t 10 (* a 63-bit word is at most ceil(63/7) = 9 varint bytes *);
    let buf = t.buf in
    let rec go pos n =
      if n >= 0 && n < 0x80 then begin
        Bytes.unsafe_set buf pos (Char.unsafe_chr n);
        t.len <- pos + 1
      end
      else begin
        Bytes.unsafe_set buf pos (Char.unsafe_chr (0x80 lor (n land 0x7F)));
        go (pos + 1) (n lsr 7)
      end
    in
    go t.len n

  let uint t n =
    if n < 0 then invalid_arg "Wire.Encoder.uint: negative";
    uint_bits t n

  (* Length-prefixed array of non-negative varints with one reservation
     and one fused loop — a vector clock is the bulk of nearly every
     replicated message, so the per-entry [uint] call overhead matters. *)
  let uint_array t a =
    let n = Array.length a in
    uint_bits t n;
    reserve t (10 * n);
    let buf = t.buf in
    let rec entry i pos =
      if i = n then t.len <- pos
      else begin
        let v = Array.unsafe_get a i in
        if v < 0 then invalid_arg "Wire.Encoder.uint_array: negative";
        let rec go pos v =
          if v < 0x80 then begin
            Bytes.unsafe_set buf pos (Char.unsafe_chr v);
            entry (i + 1) (pos + 1)
          end
          else begin
            Bytes.unsafe_set buf pos (Char.unsafe_chr (0x80 lor (v land 0x7F)));
            go (pos + 1) (v lsr 7)
          end
        in
        go pos v
      end
    in
    entry 0 t.len

  (* Zigzag: 0,-1,1,-2,2,... -> 0,1,2,3,4,... so small magnitudes of either
     sign encode in one byte. *)
  let int t n = uint_bits t ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let bool t b =
    reserve t 1;
    add_byte t (if b then 1 else 0)

  let string t s =
    let len = String.length s in
    uint t len;
    reserve t len;
    Bytes.blit_string s 0 t.buf t.len len;
    t.len <- t.len + len

  (* Explicit loops: [List.iter (f t)] would allocate a closure for the
     partial application on every call, which shows up on the per-message
     hot path. *)
  let list t f l =
    uint t (List.length l);
    let rec go = function
      | [] -> ()
      | x :: tl ->
        f t x;
        go tl
    in
    go l

  let array t f a =
    uint t (Array.length a);
    for i = 0 to Array.length a - 1 do
      f t (Array.unsafe_get a i)
    done

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let pair t f g (a, b) =
    f t a;
    g t b

  let to_string t = Bytes.sub_string t.buf 0 t.len

  let size_bytes t = t.len

  let size_bits t = 8 * t.len
end

module Decoder = struct
  type t = { input : string; mutable pos : int }

  exception Malformed of string

  let of_string input = { input; pos = 0 }

  let remaining t = String.length t.input - t.pos

  let byte t =
    if t.pos >= String.length t.input then raise (Malformed "truncated input");
    let c = Char.code (String.unsafe_get t.input t.pos) in
    t.pos <- t.pos + 1;
    c

  (* Single-byte varints are the overwhelmingly common case; decode them
     without entering the shift-accumulate loop. *)
  let uint t =
    let pos = t.pos in
    if pos < String.length t.input then begin
      let b = Char.code (String.unsafe_get t.input pos) in
      if b < 0x80 then begin
        t.pos <- pos + 1;
        b
      end
      else
        let rec go shift acc =
          if shift > Sys.int_size then raise (Malformed "varint overflow");
          let b = byte t in
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if b land 0x80 = 0 then acc else go (shift + 7) acc
        in
        go 0 0
    end
    else raise (Malformed "truncated input")

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "bad bool byte %d" b))

  let string t =
    let len = uint t in
    if len < 0 || t.pos + len > String.length t.input then
      raise (Malformed "string length exceeds input");
    let s = String.sub t.input t.pos len in
    t.pos <- t.pos + len;
    s

  (* [List.init]/[Array.init] do not specify the order in which they apply
     their function, so decode with explicit left-to-right loops instead. *)
  let list t f =
    let len = uint t in
    if len < 0 || len > remaining t then raise (Malformed "list length exceeds input");
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f t :: acc) in
    go len []

  let array t f =
    let len = uint t in
    if len < 0 || len > remaining t then raise (Malformed "array length exceeds input");
    if len = 0 then [||]
    else begin
      let a = Array.make len (f t) in
      for i = 1 to len - 1 do
        Array.unsafe_set a i (f t)
      done;
      a
    end

  let option t f = if bool t then Some (f t) else None

  let pair t f g =
    let a = f t in
    let b = g t in
    (a, b)

  let at_end t = t.pos = String.length t.input

  let expect_end t =
    if not (at_end t) then
      raise
        (Malformed
           (Printf.sprintf "trailing garbage: %d of %d bytes unread"
              (String.length t.input - t.pos)
              (String.length t.input)))
end

module Frame = struct
  (* Standard reflected CRC-32 (IEEE 802.3 polynomial). Catches every
     burst error up to 32 bits — in particular any single corrupted byte —
     and longer random corruption with probability 1 - 2^-32. *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let crc32 s =
    let t = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
    !c lxor 0xFFFFFFFF

  let seal payload =
    let e = Encoder.create () in
    Encoder.string e payload;
    Encoder.uint e (crc32 payload);
    Encoder.to_string e

  let unseal framed =
    let d = Decoder.of_string framed in
    let payload = Decoder.string d in
    let crc = Decoder.uint d in
    Decoder.expect_end d;
    if crc <> crc32 payload then raise (Decoder.Malformed "frame checksum mismatch");
    payload
end

module Gossip = struct
  (* The anti-entropy envelope kinds (Haec_store.Anti_entropy) live here so
     the tag space is fixed at the wire layer: telemetry, tests, and any
     future store transformer agree on what a digest or a repair item is
     without depending on the store library. *)
  type kind = Update | Digest | Repair_request | Repair | Hello | Goodbye

  let tag = function
    | Update -> 0
    | Digest -> 1
    | Repair_request -> 2
    | Repair -> 3
    | Hello -> 4
    | Goodbye -> 5

  let name = function
    | Update -> "update"
    | Digest -> "digest"
    | Repair_request -> "repair-request"
    | Repair -> "repair"
    | Hello -> "hello"
    | Goodbye -> "goodbye"

  let encode_kind enc k = Encoder.uint enc (tag k)

  let decode_kind dec =
    match Decoder.uint dec with
    | 0 -> Update
    | 1 -> Digest
    | 2 -> Repair_request
    | 3 -> Repair
    | 4 -> Hello
    | 5 -> Goodbye
    | t -> raise (Decoder.Malformed (Printf.sprintf "bad gossip kind tag %d" t))
end

(* One long-lived scratch encoder per domain serves every non-nested
   [encode]: the replication hot path serializes one small message at a
   time, and reusing the grown byte block removes the per-message
   allocation. The scratch is domain-local state ([Domain.DLS]) so
   parallel seed sweeps (Haec_util.Par) never share it across domains.
   The [in_use] flag keeps nested [encode] calls (an encoder callback
   that itself encodes) correct by giving inner calls a fresh encoder;
   the scratch block is dropped if an oversized message grew it past
   64 KiB so one outlier doesn't pin memory forever. *)
type scratch = { enc : Encoder.t; mutable in_use : bool }

let scratch_key =
  Domain.DLS.new_key (fun () -> { enc = Encoder.create (); in_use = false })

let scratch_max_bytes = 65536

(* Hand-rolled unwind instead of [Fun.protect]: the latter allocates two
   closures per call, measurable on a path that encodes one small message
   per varint-sized payload. *)
let release_scratch s =
  s.in_use <- false;
  if Bytes.length s.enc.Encoder.buf > scratch_max_bytes then
    s.enc.Encoder.buf <- Bytes.create 64

let encode f =
  let s = Domain.DLS.get scratch_key in
  if s.in_use then begin
    let e = Encoder.create () in
    f e;
    Encoder.to_string e
  end
  else begin
    s.in_use <- true;
    Encoder.reset s.enc;
    match f s.enc with
    | () ->
      let out = Encoder.to_string s.enc in
      release_scratch s;
      out
    | exception exn ->
      release_scratch s;
      raise exn
  end

let decode s f =
  let d = Decoder.of_string s in
  let v = f d in
  Decoder.expect_end d;
  v

let size_bits s = 8 * String.length s
