module Encoder = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  (* Emit the word as an unsigned bit pattern (logical shifts), so zigzag
     patterns whose top bit is set — from [max_int]/[min_int] — survive. *)
  let uint_bits buf n =
    let rec go n =
      if n >= 0 && n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
        go (n lsr 7)
      end
    in
    go n

  let uint buf n =
    if n < 0 then invalid_arg "Wire.Encoder.uint: negative";
    uint_bits buf n

  (* Zigzag: 0,-1,1,-2,2,... -> 0,1,2,3,4,... so small magnitudes of either
     sign encode in one byte. *)
  let int buf n = uint_bits buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

  let string buf s =
    uint buf (String.length s);
    Buffer.add_string buf s

  let list buf f l =
    uint buf (List.length l);
    List.iter (f buf) l

  let array buf f a =
    uint buf (Array.length a);
    Array.iter (f buf) a

  let option buf f = function
    | None -> bool buf false
    | Some x ->
      bool buf true;
      f buf x

  let pair buf f g (a, b) =
    f buf a;
    g buf b

  let to_string = Buffer.contents

  let size_bytes = Buffer.length

  let size_bits buf = 8 * Buffer.length buf
end

module Decoder = struct
  type t = { input : string; mutable pos : int }

  exception Malformed of string

  let of_string input = { input; pos = 0 }

  let byte t =
    if t.pos >= String.length t.input then raise (Malformed "truncated input");
    let c = Char.code t.input.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let uint t =
    let rec go shift acc =
      if shift > Sys.int_size then raise (Malformed "varint overflow");
      let b = byte t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "bad bool byte %d" b))

  let string t =
    let len = uint t in
    if len < 0 || t.pos + len > String.length t.input then
      raise (Malformed "string length exceeds input");
    let s = String.sub t.input t.pos len in
    t.pos <- t.pos + len;
    s

  (* [List.init]/[Array.init] do not specify the order in which they apply
     their function, so decode into an explicit accumulator instead. *)
  let list t f =
    let len = uint t in
    if len < 0 || len > String.length t.input - t.pos then
      raise (Malformed "list length exceeds input");
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f t :: acc) in
    go len []

  let array t f =
    let len = uint t in
    if len < 0 || len > String.length t.input - t.pos then
      raise (Malformed "array length exceeds input");
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f t :: acc) in
    Array.of_list (go len [])

  let option t f = if bool t then Some (f t) else None

  let pair t f g =
    let a = f t in
    let b = g t in
    (a, b)

  let at_end t = t.pos = String.length t.input

  let expect_end t =
    if not (at_end t) then
      raise
        (Malformed
           (Printf.sprintf "trailing garbage: %d of %d bytes unread"
              (String.length t.input - t.pos)
              (String.length t.input)))
end

module Frame = struct
  (* Standard reflected CRC-32 (IEEE 802.3 polynomial). Catches every
     burst error up to 32 bits — in particular any single corrupted byte —
     and longer random corruption with probability 1 - 2^-32. *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let crc32 s =
    let t = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
    !c lxor 0xFFFFFFFF

  let seal payload =
    let e = Encoder.create () in
    Encoder.string e payload;
    Encoder.uint e (crc32 payload);
    Encoder.to_string e

  let unseal framed =
    let d = Decoder.of_string framed in
    let payload = Decoder.string d in
    let crc = Decoder.uint d in
    Decoder.expect_end d;
    if crc <> crc32 payload then raise (Decoder.Malformed "frame checksum mismatch");
    payload
end

let encode f =
  let e = Encoder.create () in
  f e;
  Encoder.to_string e

let decode s f =
  let d = Decoder.of_string s in
  let v = f d in
  Decoder.expect_end d;
  v

let size_bits s = 8 * String.length s
