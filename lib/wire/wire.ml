module Version = struct
  (* The negotiated frame version. [V1] is the original layout: every
     integer a LEB128 varint, every vector clock a length-prefixed varint
     array. [V2] adds the compressed layouts (bit-packed / run-length
     vectors, sparse deltas, delta digests, grouped repair runs), each one
     self-describing behind a leading 0x00 marker byte — a position where
     every v1 encoding puts a varint that is at least 1 — so decoders are
     version-agnostic: any replica decodes both formats, and the
     configured version governs only what a replica *emits*. *)
  type t = V1 | V2

  let to_int = function V1 -> 1 | V2 -> 2

  let of_int = function
    | 1 -> Some V1
    | 2 -> Some V2
    | _ -> None

  let name = function V1 -> "v1" | V2 -> "v2"

  (* One process-global default, read when a replica state is created or a
     message encoded. Set once at CLI start (before any worker domain
     spawns), so parallel seed sweeps see a coherent value. *)
  let default = Atomic.make V2

  let current () = Atomic.get default

  let set v = Atomic.set default v

  (* Scoped override for experiments that compare v1 against v2 in one
     process; restores on exit or exception. *)
  let scoped v f =
    let saved = Atomic.get default in
    Atomic.set default v;
    match f () with
    | x ->
      Atomic.set default saved;
      x
    | exception exn ->
      Atomic.set default saved;
      raise exn
end

module Encoder = struct
  (* A bare [Bytes.t] grown in place: [Buffer] pays a closure-guarded
     bounds check and a function call per byte, which dominates varint
     encoding where almost every write is a single byte. Writes go
     through [add_byte] after an explicit [reserve], so the unsafe
     accesses are bounds-checked in one place, once per value. *)
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 64; len = 0 }

  let reset t = t.len <- 0

  let grow t needed =
    let cap = ref (Bytes.length t.buf * 2) in
    while t.len + needed > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.buf 0 b 0 t.len;
    t.buf <- b

  let[@inline] reserve t n = if t.len + n > Bytes.length t.buf then grow t n

  (* callers must [reserve] first *)
  let[@inline] add_byte t c =
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr c);
    t.len <- t.len + 1

  (* Emit the word as an unsigned bit pattern (logical shifts), so zigzag
     patterns whose top bit is set — from [max_int]/[min_int] — survive.
     The loop writes through a local [buf] binding and stores [len] once
     at the end: going through [add_byte] would pay a call plus a field
     store per byte, which dominates on mostly-1-and-2-byte varints. *)
  let uint_bits t n =
    reserve t 10 (* a 63-bit word is at most ceil(63/7) = 9 varint bytes *);
    let buf = t.buf in
    let rec go pos n =
      if n >= 0 && n < 0x80 then begin
        Bytes.unsafe_set buf pos (Char.unsafe_chr n);
        t.len <- pos + 1
      end
      else begin
        Bytes.unsafe_set buf pos (Char.unsafe_chr (0x80 lor (n land 0x7F)));
        go (pos + 1) (n lsr 7)
      end
    in
    go t.len n

  let uint t n =
    if n < 0 then invalid_arg "Wire.Encoder.uint: negative";
    uint_bits t n

  (* Length-prefixed array of non-negative varints with one reservation
     and one fused loop — a vector clock is the bulk of nearly every
     replicated message, so the per-entry [uint] call overhead matters. *)
  let uint_array t a =
    let n = Array.length a in
    uint_bits t n;
    reserve t (10 * n);
    let buf = t.buf in
    let rec entry i pos =
      if i = n then t.len <- pos
      else begin
        let v = Array.unsafe_get a i in
        if v < 0 then invalid_arg "Wire.Encoder.uint_array: negative";
        let rec go pos v =
          if v < 0x80 then begin
            Bytes.unsafe_set buf pos (Char.unsafe_chr v);
            entry (i + 1) (pos + 1)
          end
          else begin
            Bytes.unsafe_set buf pos (Char.unsafe_chr (0x80 lor (v land 0x7F)));
            go (pos + 1) (v lsr 7)
          end
        in
        go pos v
      end
    in
    entry 0 t.len

  (* Fixed-width bit packing, little-endian bit order, no length prefix:
     the v2 compressed-vector payload. Requires [1 <= width <= 56] (so the
     accumulator, at most 7 pending bits plus one value, fits a 63-bit
     word) and every entry within [width] bits. *)
  let packed_array t a ~width =
    if width < 1 || width > 56 then invalid_arg "Wire.Encoder.packed_array: width";
    let n = Array.length a in
    reserve t (((n * width) + 7) / 8);
    let buf = t.buf in
    let pos = ref t.len in
    let acc = ref 0 and bits = ref 0 in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get a i in
      if v < 0 || v lsr width > 0 then
        invalid_arg "Wire.Encoder.packed_array: entry exceeds width";
      acc := !acc lor (v lsl !bits);
      bits := !bits + width;
      while !bits >= 8 do
        Bytes.unsafe_set buf !pos (Char.unsafe_chr (!acc land 0xFF));
        incr pos;
        acc := !acc lsr 8;
        bits := !bits - 8
      done
    done;
    if !bits > 0 then begin
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (!acc land 0xFF));
      incr pos
    end;
    t.len <- !pos

  (* Zigzag: 0,-1,1,-2,2,... -> 0,1,2,3,4,... so small magnitudes of either
     sign encode in one byte. *)
  let int t n = uint_bits t ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let bool t b =
    reserve t 1;
    add_byte t (if b then 1 else 0)

  let string t s =
    let len = String.length s in
    uint t len;
    reserve t len;
    Bytes.blit_string s 0 t.buf t.len len;
    t.len <- t.len + len

  (* Explicit loops: [List.iter (f t)] would allocate a closure for the
     partial application on every call, which shows up on the per-message
     hot path. *)
  let list t f l =
    uint t (List.length l);
    let rec go = function
      | [] -> ()
      | x :: tl ->
        f t x;
        go tl
    in
    go l

  let array t f a =
    uint t (Array.length a);
    for i = 0 to Array.length a - 1 do
      f t (Array.unsafe_get a i)
    done

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let pair t f g (a, b) =
    f t a;
    g t b

  let to_string t = Bytes.sub_string t.buf 0 t.len

  let size_bytes t = t.len

  let size_bits t = 8 * t.len
end

module Decoder = struct
  (* A [pos, limit) window over a shared string: a decoder for a nested
     length-prefixed region ([sub]) is a view into the parent's bytes, not
     a copy, so envelope items can be skipped or decoded in place. *)
  type t = { input : string; mutable pos : int; limit : int }

  exception Malformed of string

  let of_string input = { input; pos = 0; limit = String.length input }

  let of_sub input ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length input then
      invalid_arg "Wire.Decoder.of_sub: window out of bounds";
    { input; pos; limit = pos + len }

  let remaining t = t.limit - t.pos

  let byte t =
    if t.pos >= t.limit then raise (Malformed "truncated input");
    let c = Char.code (String.unsafe_get t.input t.pos) in
    t.pos <- t.pos + 1;
    c

  let peek t =
    if t.pos >= t.limit then raise (Malformed "truncated input");
    Char.code (String.unsafe_get t.input t.pos)

  (* Single-byte varints are the overwhelmingly common case; decode them
     without entering the shift-accumulate loop. *)
  let uint t =
    let pos = t.pos in
    if pos < t.limit then begin
      let b = Char.code (String.unsafe_get t.input pos) in
      if b < 0x80 then begin
        t.pos <- pos + 1;
        b
      end
      else
        let rec go shift acc =
          if shift > Sys.int_size then raise (Malformed "varint overflow");
          let b = byte t in
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if b land 0x80 = 0 then acc else go (shift + 7) acc
        in
        go 0 0
    end
    else raise (Malformed "truncated input")

  (* Fused mirror of [Encoder.uint_array]: one length read, one bounds
     check, then a tight loop with unsafe reads — the vector-clock decode
     underneath every replicated message. *)
  let uint_array t =
    let n = uint t in
    if n < 0 || n > remaining t then raise (Malformed "array length exceeds input");
    if n = 0 then [||]
    else begin
      let a = Array.make n 0 in
      let input = t.input and limit = t.limit in
      let pos = ref t.pos in
      (try
         for i = 0 to n - 1 do
           let p = !pos in
           if p >= limit then raise Exit;
           let b = Char.code (String.unsafe_get input p) in
           if b < 0x80 then begin
             Array.unsafe_set a i b;
             pos := p + 1
           end
           else begin
             let acc = ref (b land 0x7F) and shift = ref 7 in
             incr pos;
             let continue = ref true in
             while !continue do
               if !shift > Sys.int_size then raise (Malformed "varint overflow");
               if !pos >= limit then raise Exit;
               let b = Char.code (String.unsafe_get input !pos) in
               incr pos;
               acc := !acc lor ((b land 0x7F) lsl !shift);
               shift := !shift + 7;
               if b land 0x80 = 0 then continue := false
             done;
             Array.unsafe_set a i !acc
           end
         done
       with Exit -> raise (Malformed "truncated input"));
      t.pos <- !pos;
      a
    end

  (* Inverse of [Encoder.packed_array]: [n] entries of [width] bits each,
     little-endian bit order. The byte budget is checked up front, so a
     bogus [n] cannot trigger an allocation bomb. *)
  let packed_array t ~n ~width =
    if width < 1 || width > 56 then raise (Malformed "packed array: bad width");
    if n < 0 then raise (Malformed "packed array: negative length");
    let bytes = ((n * width) + 7) / 8 in
    if bytes > remaining t then raise (Malformed "packed array exceeds input");
    let a = Array.make n 0 in
    let input = t.input in
    let pos = ref t.pos in
    let acc = ref 0 and bits = ref 0 in
    let mask = (1 lsl width) - 1 in
    for i = 0 to n - 1 do
      while !bits < width do
        acc := !acc lor (Char.code (String.unsafe_get input !pos) lsl !bits);
        incr pos;
        bits := !bits + 8
      done;
      Array.unsafe_set a i (!acc land mask);
      acc := !acc lsr width;
      bits := !bits - width
    done;
    t.pos <- t.pos + bytes;
    a

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "bad bool byte %d" b))

  let string t =
    let len = uint t in
    if len < 0 || t.pos + len > t.limit then
      raise (Malformed "string length exceeds input");
    let s = String.sub t.input t.pos len in
    t.pos <- t.pos + len;
    s

  (* Advance past a length-prefixed string without copying it — the
     zero-copy path for classifiers that only need the envelope shape. *)
  let skip_string t =
    let len = uint t in
    if len < 0 || t.pos + len > t.limit then
      raise (Malformed "string length exceeds input");
    t.pos <- t.pos + len

  (* A child decoder over the next [len] bytes (a view, no copy); the
     parent skips past them. *)
  let sub t len =
    if len < 0 || t.pos + len > t.limit then
      raise (Malformed "sub-decoder length exceeds input");
    let child = { input = t.input; pos = t.pos; limit = t.pos + len } in
    t.pos <- t.pos + len;
    child

  (* [List.init]/[Array.init] do not specify the order in which they apply
     their function, so decode with explicit left-to-right loops instead. *)
  let list t f =
    let len = uint t in
    if len < 0 || len > remaining t then raise (Malformed "list length exceeds input");
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f t :: acc) in
    go len []

  let array t f =
    let len = uint t in
    if len < 0 || len > remaining t then raise (Malformed "array length exceeds input");
    if len = 0 then [||]
    else begin
      let a = Array.make len (f t) in
      for i = 1 to len - 1 do
        Array.unsafe_set a i (f t)
      done;
      a
    end

  let option t f = if bool t then Some (f t) else None

  let pair t f g =
    let a = f t in
    let b = g t in
    (a, b)

  let at_end t = t.pos = t.limit

  let expect_end t =
    if not (at_end t) then
      raise
        (Malformed
           (Printf.sprintf "trailing garbage: %d of %d bytes unread" (t.limit - t.pos)
              t.limit))
end

(* One long-lived scratch encoder per domain serves every non-nested
   [encode]: the replication hot path serializes one small message at a
   time, and reusing the grown byte block removes the per-message
   allocation. The scratch is domain-local state ([Domain.DLS]) so
   parallel seed sweeps (Haec_util.Par) never share it across domains.
   The [in_use] flag keeps nested [encode] calls (an encoder callback
   that itself encodes) correct by giving inner calls a fresh encoder;
   the scratch block is dropped if an oversized message grew it past
   64 KiB so one outlier doesn't pin memory forever. *)
type scratch = { enc : Encoder.t; mutable in_use : bool }

let scratch_key =
  Domain.DLS.new_key (fun () -> { enc = Encoder.create (); in_use = false })

let scratch_max_bytes = 65536

(* Hand-rolled unwind instead of [Fun.protect]: the latter allocates two
   closures per call, measurable on a path that encodes one small message
   per varint-sized payload. *)
let release_scratch s =
  s.in_use <- false;
  if Bytes.length s.enc.Encoder.buf > scratch_max_bytes then
    s.enc.Encoder.buf <- Bytes.create 64

let encode f =
  let s = Domain.DLS.get scratch_key in
  if s.in_use then begin
    let e = Encoder.create () in
    f e;
    Encoder.to_string e
  end
  else begin
    s.in_use <- true;
    Encoder.reset s.enc;
    match f s.enc with
    | () ->
      let out = Encoder.to_string s.enc in
      release_scratch s;
      out
    | exception exn ->
      release_scratch s;
      raise exn
  end

let decode s f =
  let d = Decoder.of_string s in
  let v = f d in
  Decoder.expect_end d;
  v

let size_bits s = 8 * String.length s

module Frame = struct
  (* Standard reflected CRC-32 (IEEE 802.3 polynomial). Catches every
     burst error up to 32 bits — in particular any single corrupted byte —
     and longer random corruption with probability 1 - 2^-32. *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let crc32 s =
    let t = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
    !c lxor 0xFFFFFFFF

  (* Sealing goes through the pooled scratch encoder ([encode]) rather
     than a fresh [Encoder.create] per frame. *)
  let seal payload =
    encode (fun e ->
        Encoder.string e payload;
        Encoder.uint e (crc32 payload))

  let unseal framed =
    let d = Decoder.of_string framed in
    let payload = Decoder.string d in
    let crc = Decoder.uint d in
    Decoder.expect_end d;
    if crc <> crc32 payload then raise (Decoder.Malformed "frame checksum mismatch");
    payload
end

module Gossip = struct
  (* The anti-entropy envelope kinds (Haec_store.Anti_entropy) live here so
     the tag space is fixed at the wire layer: telemetry, tests, and any
     future store transformer agree on what a digest or a repair item is
     without depending on the store library. Tags 6 and 7 are the wire-v2
     additions: a [Digest_delta] carries only the [have] entries that
     changed since the sender's last digest, and [Repair_runs] carries one
     merged per-peer repair as per-origin runs of consecutive sequence
     numbers. V1 emitters never produce them; every decoder accepts
     them. *)
  type kind =
    | Update
    | Digest
    | Repair_request
    | Repair
    | Hello
    | Goodbye
    | Digest_delta
    | Repair_runs

  let tag = function
    | Update -> 0
    | Digest -> 1
    | Repair_request -> 2
    | Repair -> 3
    | Hello -> 4
    | Goodbye -> 5
    | Digest_delta -> 6
    | Repair_runs -> 7

  let name = function
    | Update -> "update"
    | Digest -> "digest"
    | Repair_request -> "repair-request"
    | Repair -> "repair"
    | Hello -> "hello"
    | Goodbye -> "goodbye"
    | Digest_delta -> "digest-delta"
    | Repair_runs -> "repair-runs"

  let encode_kind enc k = Encoder.uint enc (tag k)

  let decode_kind dec =
    match Decoder.uint dec with
    | 0 -> Update
    | 1 -> Digest
    | 2 -> Repair_request
    | 3 -> Repair
    | 4 -> Hello
    | 5 -> Goodbye
    | 6 -> Digest_delta
    | 7 -> Repair_runs
    | t -> raise (Decoder.Malformed (Printf.sprintf "bad gossip kind tag %d" t))
end
