(* The full benchmark and experiment harness.

   Running `dune exec bench/main.exe` first regenerates every experiment
   table registered in Haec_experiments.Registry — whatever the registry
   currently holds; `haec_cli list` or EXPERIMENTS.md enumerate them —
   then runs Bechamel microbenchmarks of the core operations and the
   replication soak macro-benchmark, writing both to BENCH_results.json.

   `dune exec bench/main.exe -- E6 E7` runs only the named experiments;
   `dune exec bench/main.exe -- --micro` runs only the micro + soak
   benchmarks; `--quick` shrinks trial counts and soak sizes for CI smoke
   runs (the JSON artifact keeps the same shape); `--live` adds the
   live-cluster saturation rows (E25 harness) measured on real OCaml 5
   domains. *)

open Bechamel
open Toolkit
open Haec
module Registry = Haec_experiments.Registry
module Op = Model.Op
module Value = Model.Value
module Vclock = Clock.Vclock

(* ---------- microbenchmark fixtures ---------- *)

let vclock_pair =
  let a = Array.init 16 (fun i -> (i * 37) mod 101) in
  let b = Array.init 16 (fun i -> (i * 53) mod 97) in
  (Vclock.of_array a, Vclock.of_array b)

let bench_vclock_merge =
  let a, b = vclock_pair in
  Test.make ~name:"vclock/merge-n16" (Staged.stage (fun () -> Vclock.merge a b))

let bench_vclock_compare =
  let a, b = vclock_pair in
  Test.make ~name:"vclock/compare-n16" (Staged.stage (fun () -> Vclock.compare_causal a b))

let sample_update =
  {
    Store.Mvr_object.vv = Vclock.of_array (Array.init 8 (fun i -> i * 1000));
    dot = Clock.Dot.make ~replica:3 ~seq:3000;
    value = Value.Pair (3000, 3);
  }

(* The wire/encode-update and wire/decode-update rows are pinned to frame
   version v1 (the whole fast group runs under [Wire.Version.scoped V1]),
   so they keep measuring the same codec as the seed baseline; the v2
   chooser/compressed paths get their own -v2 rows below. *)
let bench_wire_encode =
  Test.make ~name:"wire/encode-update"
    (Staged.stage (fun () ->
         Wire.encode (fun e -> Store.Mvr_object.encode_update e sample_update)))

let encoded_update =
  Wire.Version.scoped Wire.Version.V1 (fun () ->
      Wire.encode (fun e -> Store.Mvr_object.encode_update e sample_update))

let bench_wire_decode =
  Test.make ~name:"wire/decode-update"
    (Staged.stage (fun () -> Wire.decode encoded_update Store.Mvr_object.decode_update))

let encoded_update_v2 =
  Wire.Version.scoped Wire.Version.V2 (fun () ->
      Wire.encode (fun e -> Store.Mvr_object.encode_update e sample_update))

let bench_wire_encode_v2 =
  Test.make ~name:"wire/encode-update-v2"
    (Staged.stage (fun () ->
         Wire.encode (fun e -> Store.Mvr_object.encode_update e sample_update)))

let bench_wire_decode_v2 =
  Test.make ~name:"wire/decode-update-v2"
    (Staged.stage (fun () -> Wire.decode encoded_update_v2 Store.Mvr_object.decode_update))

let compressible_clock = Vclock.of_array (Array.init 16 (fun i -> i * 1000))

let bench_vclock_encode_c =
  Test.make ~name:"vclock/encode-c-n16"
    (Staged.stage (fun () ->
         Wire.encode (fun e -> Vclock.encode_c e compressible_clock)))

(* a warmed-up MVR store state *)
let warm_mvr =
  let st = ref (Store.Mvr_store.init ~n:4 ~me:0) in
  for i = 1 to 64 do
    let st', _, _ = Store.Mvr_store.do_op !st ~obj:(i mod 8) (Op.Write (Value.Int i)) in
    st := st'
  done;
  let st', _ = Store.Mvr_store.send !st in
  st'

let bench_mvr_write =
  Test.make ~name:"store/mvr-write"
    (Staged.stage (fun () -> Store.Mvr_store.do_op warm_mvr ~obj:3 (Op.Write (Value.Int 9))))

let bench_mvr_read =
  Test.make ~name:"store/mvr-read"
    (Staged.stage (fun () -> Store.Mvr_store.do_op warm_mvr ~obj:3 Op.Read))

let causal_payload =
  let st = Store.Causal_mvr_store.init ~n:4 ~me:1 in
  let st, _, _ = Store.Causal_mvr_store.do_op st ~obj:0 (Op.Write (Value.Int 1)) in
  let st, _, _ = Store.Causal_mvr_store.do_op st ~obj:1 (Op.Write (Value.Int 2)) in
  snd (Store.Causal_mvr_store.send st)

let fresh_causal = Store.Causal_mvr_store.init ~n:4 ~me:0

let bench_causal_receive =
  Test.make ~name:"store/causal-receive"
    (Staged.stage (fun () ->
         Store.Causal_mvr_store.receive fresh_causal ~sender:1 causal_payload))

let sample_exec =
  let module R = Sim.Runner.Make (Store.Mvr_store) in
  let rng = Util.Rng.create 5 in
  let sim = R.create ~seed:5 ~n:4 ~policy:(Sim.Net_policy.random_delay ()) () in
  let steps = Sim.Workload.generate ~rng ~n:4 ~objects:4 ~ops:60 Sim.Workload.register_mix in
  Sim.Workload.run
    (fun ~replica ~obj op -> R.op sim ~replica ~obj op)
    ~advance:(R.advance_to sim) steps;
  R.run_until_quiescent sim;
  (R.execution sim, R.witness_abstract sim)

let bench_hb_compute =
  let exec, _ = sample_exec in
  Test.make ~name:"model/hb-compute" (Staged.stage (fun () -> Model.Hb.compute exec))

let bench_spec_check =
  let _, witness = sample_exec in
  Test.make ~name:"spec/check-correct"
    (Staged.stage (fun () -> Spec.Spec.is_correct ~spec_of:(fun _ -> Spec.Spec.mvr) witness))

let occ_sample = Construction.Occ_gen.planted (Util.Rng.create 6) ~n:4 ~groups:4 ~readers:2 ()

let bench_occ_check =
  Test.make ~name:"consistency/occ-check"
    (Staged.stage (fun () -> Consistency.Occ.is_occ occ_sample))

let revealed_sample = fst (Construction.Revealing.make_revealing occ_sample)

module T6 = Construction.Theorem6.Make (Store.Mvr_store)

let bench_theorem6 =
  Test.make ~name:"construction/theorem6-planted"
    (Staged.stage (fun () -> T6.construct revealed_sample))

module T12 = Construction.Theorem12.Make (Store.Causal_mvr_store)

let bench_theorem12 =
  Test.make ~name:"construction/theorem12-n5-k16"
    (Staged.stage (fun () -> T12.encode_decode ~n:5 ~s:4 ~k:16 ~g:[| 7; 16; 3 |]))

let search_target =
  Consistency.Search.target_of_events ~n:3
    [
      { Model.Event.replica = 0; obj = 1; op = Op.Write (Value.Int 100); rval = Op.Ok };
      { Model.Event.replica = 0; obj = 0; op = Op.Write (Value.Int 1); rval = Op.Ok };
      { Model.Event.replica = 1; obj = 0; op = Op.Write (Value.Int 2); rval = Op.Ok };
      {
        Model.Event.replica = 2;
        obj = 0;
        op = Op.Read;
        rval = Op.vals [ Value.Int 1; Value.Int 2 ];
      };
    ]

let bench_search =
  Test.make ~name:"consistency/search-4ev"
    (Staged.stage (fun () ->
         Consistency.Search.search ~spec_of:(fun _ -> Spec.Spec.mvr) search_target))

(* fixtures for the newer modules *)
let audit_history =
  let module R = Sim.Runner.Make (Store.Causal_reg_store) in
  let rng = Util.Rng.create 21 in
  let sim = R.create ~seed:21 ~n:4 ~policy:(Sim.Net_policy.random_delay ()) () in
  let steps = Sim.Workload.generate ~rng ~n:4 ~objects:4 ~ops:150 Sim.Workload.register_mix in
  Sim.Workload.run (fun ~replica ~obj op -> R.op sim ~replica ~obj op)
    ~advance:(R.advance_to sim) steps;
  R.run_until_quiescent sim;
  (R.execution sim, R.witness_abstract sim)

let bench_causal_hist =
  let exec, _ = audit_history in
  Test.make ~name:"consistency/causal-hist-150ops"
    (Staged.stage (fun () -> Consistency.Causal_hist.check exec))

let bench_session =
  let _, witness = audit_history in
  Test.make ~name:"consistency/session-guarantees"
    (Staged.stage (fun () -> Consistency.Session.check witness))

let bench_trace_roundtrip =
  let exec, _ = audit_history in
  let encoded = Model.Trace_io.to_string exec in
  Test.make ~name:"model/trace-decode"
    (Staged.stage (fun () -> Model.Trace_io.of_string encoded))

let state_pair =
  let mk seed =
    let st = ref (Store.Mvr_object.empty ~n:4) in
    let rng = Util.Rng.create seed in
    for i = 1 to 10 do
      let me = Util.Rng.int rng 4 in
      let st', _ = Store.Mvr_object.local_write !st ~me (Value.Int (seed + i)) in
      st := st'
    done;
    !st
  in
  (mk 100, mk 200)

let bench_state_join =
  let a, b = state_pair in
  Test.make ~name:"store/mvr-state-join"
    (Staged.stage (fun () -> Store.Mvr_object.join a b))

let orset_state =
  let st = ref (Store.Orset_store.init ~n:3 ~me:0) in
  for i = 1 to 32 do
    let st', _, _ = Store.Orset_store.do_op !st ~obj:0 (Op.Add (Value.Int (i mod 8))) in
    st := st'
  done;
  !st

let bench_orset_remove =
  Test.make ~name:"store/orset-remove"
    (Staged.stage (fun () -> Store.Orset_store.do_op orset_state ~obj:0 (Op.Remove (Value.Int 3))))

let tests =
  Test.make_grouped ~name:"haec"
    [
      bench_causal_hist;
      bench_session;
      bench_orset_remove;
      bench_hb_compute;
      bench_spec_check;
      bench_occ_check;
      bench_theorem6;
      bench_search;
    ]

(* Rows whose fit stayed under the CI r^2 bar in the default group:
   theorem12 runs ~150us/op, so the default quota yields too few samples
   for a stable OLS slope, causal-receive sits in the awkward ~1us band
   where per-batch noise dominates a short quota, and trace-decode
   (~20us/run over a 150-op execution) fit with r^2 0.44 at the default
   budget. They get a group with a larger trial/time budget of their
   own. *)
let tests_mid =
  Test.make_grouped ~name:"haec"
    [ bench_causal_receive; bench_theorem12; bench_trace_roundtrip ]

(* Sub-100ns operations need far more samples before the OLS slope is
   trustworthy: at the default budget the vclock rows fit with r^2 of
   0.41/0.59 (i.e. noise). They get their own group under the same "haec"
   prefix — row names in BENCH_results.json are unchanged — run with a
   larger trial/quota budget. *)
let tests_fast =
  Test.make_grouped ~name:"haec"
    [
      bench_state_join;
      bench_vclock_merge;
      bench_vclock_compare;
      bench_wire_encode;
      bench_wire_decode;
      bench_mvr_write;
      bench_mvr_read;
    ]

(* wire-v2 codec rows: same budget as the fast group, run with the v2
   emission default so the compressed-clock chooser is on the path *)
let tests_fast_v2 =
  Test.make_grouped ~name:"haec"
    [ bench_wire_encode_v2; bench_wire_decode_v2; bench_vclock_encode_c ]

(* ---------- replication soak (E20 harness, machine-readable) ---------- *)

module E20 = Haec_experiments.E20_soak

let soak_json ~quick =
  let module Json = Haec.Obs.Json in
  let scale k = if quick then max 64 (k / 8) else k in
  let stress_entry (s : E20.stress) =
    ( Printf.sprintf "stress/reverse-%s-k%d" s.E20.s_label s.E20.k,
      Json.Obj
        [
          ("scans", Json.Num (float_of_int s.E20.s_scans));
          ("scans_per_record", Json.Num (float_of_int s.E20.s_scans /. float_of_int s.E20.k));
          ("peak_buffer", Json.Num (float_of_int s.E20.s_max_buffer));
          ("elapsed_s", Json.Num s.E20.s_elapsed);
        ] )
  in
  let soak_entry (s : E20.soak) =
    ( Printf.sprintf "soak/%s-n%d-ops%d" s.E20.label s.E20.n s.E20.ops,
      Json.Obj
        [
          ("ops_per_sec", Json.Num (if s.E20.elapsed > 0.0 then float_of_int s.E20.ops /. s.E20.elapsed else 0.0));
          ("bytes_per_op", Json.Num (float_of_int s.E20.total_bytes /. float_of_int s.E20.ops));
          ("messages", Json.Num (float_of_int s.E20.messages));
          ("scans", Json.Num (float_of_int s.E20.scans));
          ("scans_per_delivery", Json.Num (float_of_int s.E20.scans /. float_of_int (max 1 s.E20.deliveries)));
          ("elapsed_s", Json.Num s.E20.elapsed);
        ] )
  in
  let stress =
    List.concat_map
      (fun k -> [ stress_entry (E20.stress_naive ~k); stress_entry (E20.stress_indexed ~k) ])
      [ scale 1024; scale 2048 ]
  in
  let soaks =
    List.concat_map
      (fun (n, ops, seed) ->
        [
          soak_entry (E20.soak_indexed ~n ~objects:(2 * n) ~ops:(scale ops) ~seed ());
          soak_entry (E20.soak_indexed ~coalesce:true ~n ~objects:(2 * n) ~ops:(scale ops) ~seed ());
        ])
      [ (4, 2000, 2001); (8, 4000, 2002) ]
    @ [ soak_entry (E20.soak_naive ~n:4 ~objects:8 ~ops:(scale 2000) ~seed:2001 ()) ]
  in
  stress @ soaks

(* ---------- anti-entropy recovery macro (E21 harness) ---------- *)

(* Chaos under `Anti_entropy with adversarial plans: the oracle never
   retransmits, so the digest/repair wire cost and the post-heal repair
   latency are properties of the protocol alone — worth tracking across
   commits next to the soak rows. *)
let gossip_json ~quick =
  let module Json = Haec.Obs.Json in
  let seeds n = List.init (if quick then 4 else 12) (fun i -> i + n) in
  (* each store runs the same seeds twice: once per wire version, so the
     delta-state machinery's byte savings are a row-to-row diff in the
     same artifact (E24 charts the same comparison against the Theorem 12
     floor). [scoped] flips the emission default around the whole sweep —
     replica states capture it at init — and restores it after. *)
  let entry label version (module S : Haec.Store.Store_intf.S) require spec mix
      first_seed =
    let module C = Haec.Sim.Chaos.Make (S) in
    let outcomes =
      Haec.Wire.Version.scoped version (fun () ->
          C.run_seeds ~spec_of:(fun _ -> spec) ~mix ~require ~recovery:`Anti_entropy
            ~adversarial:true ~seeds:(seeds first_seed) ())
    in
    let runs = List.length outcomes in
    let conv = ref 0 and lost = ref 0 and rounds = ref 0 in
    let digest_b = ref 0 and repair_b = ref 0 and lat = ref 0.0 in
    List.iter
      (fun o ->
        if Haec.Sim.Chaos.converged o then incr conv;
        let s = o.Haec.Sim.Chaos.stats in
        lost := !lost + s.Haec.Sim.Runner.lost_permanent;
        rounds := !rounds + s.Haec.Sim.Runner.gossip_rounds;
        lat := !lat +. Float.max 0.0 (o.Haec.Sim.Chaos.quiesced_at -. o.Haec.Sim.Chaos.horizon);
        let counter name =
          match Haec.Obs.Metrics.Registry.find o.Haec.Sim.Chaos.metrics name with
          | Some (Haec.Obs.Metrics.Registry.Counter c) -> Haec.Obs.Metrics.Counter.value c
          | Some _ | None -> 0
        in
        digest_b := !digest_b + counter "gossip.digest_bytes";
        repair_b := !repair_b + counter "gossip.repair_bytes")
      outcomes;
    ( Printf.sprintf "gossip/ae-%s-n3%s" label
        (match version with Haec.Wire.Version.V1 -> "-v1" | V2 -> ""),
      Json.Obj
        [
          ("converged", Json.Num (float_of_int !conv /. float_of_int runs));
          ("lost_permanent", Json.Num (float_of_int !lost));
          ("gossip_rounds", Json.Num (float_of_int !rounds));
          ("digest_bytes", Json.Num (float_of_int !digest_b));
          ("repair_bytes", Json.Num (float_of_int !repair_b));
          ("repair_latency_mean", Json.Num (!lat /. float_of_int runs));
        ] )
  in
  [
    entry "mvr" Haec.Wire.Version.V2 (module Haec.Store.Mvr_store) `Correct
      Haec.Spec.Spec.mvr Haec.Sim.Workload.register_mix 1;
    entry "mvr" Haec.Wire.Version.V1 (module Haec.Store.Mvr_store) `Correct
      Haec.Spec.Spec.mvr Haec.Sim.Workload.register_mix 1;
    entry "causal" Haec.Wire.Version.V2 (module Haec.Store.Causal_mvr_store) `Causal
      Haec.Spec.Spec.mvr Haec.Sim.Workload.register_mix 101;
    entry "causal" Haec.Wire.Version.V1 (module Haec.Store.Causal_mvr_store) `Causal
      Haec.Spec.Spec.mvr Haec.Sim.Workload.register_mix 101;
  ]

(* ---------- live cluster throughput (E25 harness) ---------- *)

(* Real domains on real cores (or, on a starved CI box, time-slicing one
   core — the rows record whatever the machine actually delivers):
   saturation ops/s, wall-clock visibility lag and payload bytes per
   update, for the causal store at 1/2/4 domains and for v1 vs v2 wire
   at 2 domains. No ns_per_run/r_square fields, so the fit gate and the
   regression diff skip these rows; they ride in the same artifact for
   cross-commit eyeballing. *)
let live_json ~quick =
  let module Json = Haec.Obs.Json in
  let module Stack = Live.Stack.Volatile (Store.Causal_mvr_store) in
  let module C = Live.Cluster.Make (Stack) in
  (* fault rows run the durable stack (crash windows need a WAL); the
     fault-free rows stay volatile so they compare against prior commits *)
  let module DStack = Live.Stack.Durable (Store.Causal_mvr_store) in
  let module DC = Live.Cluster.Make (DStack) in
  let duration = if quick then 0.2 else 0.5 in
  let run ?(version = Wire.Version.V2) ~n () =
    Wire.Version.scoped version (fun () ->
        C.run { Live.Cluster.default with Live.Cluster.replicas = n; duration })
  in
  let run_faulted ~n cfg_of =
    DC.run (cfg_of { Live.Cluster.default with Live.Cluster.replicas = n; duration })
  in
  let entry label (res : Live.Cluster.result) =
    let open Live.Cluster in
    let p50, p95, p99 = Obs.Metrics.Histogram.percentiles res.lag_ms in
    let nan_null f = if Float.is_nan f then Json.Null else Json.Num f in
    ( label,
      Json.Obj
        [
          ("ops_per_sec", Json.Num res.ops_per_sec);
          ("converged", Json.Num (if res.converged then 1.0 else 0.0));
          ("lag_ms_p50", nan_null p50);
          ("lag_ms_p95", nan_null p95);
          ("lag_ms_p99", nan_null p99);
          ( "payload_bytes_per_update",
            Json.Num
              (if res.total_updates > 0 then
                 float_of_int res.payload_bytes /. float_of_int res.total_updates
               else 0.0) );
          ("stalls", Json.Num (float_of_int res.stalls));
          ("availability", Json.Num res.availability);
        ] )
  in
  let crash_plan =
    (* one crash-restart of replica 1 in the middle of the load phase,
       mapped from fractions onto this run's duration *)
    Sim.Fault_plan.scaled ~factor:duration
      (Sim.Fault_plan.make
         ~crashes:[ { Sim.Fault_plan.replica = 1; at = 0.35; recover_at = 0.6 } ]
         ~horizon:1.0 ())
  in
  [
    entry "live/causal-n1" (run ~n:1 ());
    entry "live/causal-n2" (run ~n:2 ());
    entry "live/causal-n2-v1" (run ~version:Wire.Version.V1 ~n:2 ());
    entry "live/causal-n4" (run ~n:4 ());
    entry "live/causal-n2-drop1"
      (run_faulted ~n:2 (fun c -> { c with Live.Cluster.drop_p = 0.01 }));
    entry "live/causal-n2-crash"
      (run_faulted ~n:2 (fun c -> { c with Live.Cluster.faults = Some crash_plan }));
  ]

let run_micro ~quick ~live () =
  print_newline ();
  print_endline "Microbenchmarks (Bechamel, monotonic clock)";
  print_endline "===========================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    if quick then Benchmark.cfg ~limit:300 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  (* the fast group needs a still-larger budget than its first cut: at
     limit 1000/5000 the encode-update row kept fitting with r^2 ~0.4
     (ROADMAP item 4) because sub-100ns runs spend most of a short quota
     inside clamped-iteration warm-up. Tripling trials and quota got the
     codec rows above the 0.7 bar CI enforces; mvr-read (a ~100ns hit on
     a warmed store) still sat at 0.67-0.69 in quick mode, so the quick
     budget grew again (3000/0.3s -> 6000/1s) to pull it clear of the
     bar even on a noisy single-core runner. *)
  let cfg_fast =
    if quick then Benchmark.cfg ~limit:10000 ~quota:(Time.second 1.5) ~kde:None ()
    else Benchmark.cfg ~limit:20000 ~quota:(Time.second 5.0) ~kde:None ()
  in
  (* the mid group exists purely to buy theorem12 (~150us/run),
     causal-receive and trace-decode (~80us/run, allocation-heavy, so
     GC pauses fatten the residuals) enough samples for r^2 >= 0.7; see
     tests_mid *)
  let cfg_mid =
    if quick then Benchmark.cfg ~limit:3000 ~quota:(Time.second 3.0) ~kde:None ()
    else Benchmark.cfg ~limit:10000 ~quota:(Time.second 8.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let raw_mid = Benchmark.all cfg_mid instances tests_mid in
  (* the seeded rows measure the v1 codec; the -v2 rows the v2 one *)
  let raw_fast =
    Wire.Version.scoped Wire.Version.V1 (fun () ->
        Benchmark.all cfg_fast instances tests_fast)
  in
  let raw_fast_v2 =
    Wire.Version.scoped Wire.Version.V2 (fun () ->
        Benchmark.all cfg_fast instances tests_fast_v2)
  in
  let merged analyze =
    let tbl = analyze raw in
    Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) (analyze raw_mid);
    Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) (analyze raw_fast);
    Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) (analyze raw_fast_v2);
    tbl
  in
  let results = merged (Analyze.all ols Instance.monotonic_clock) in
  let allocs = merged (Analyze.all ols Instance.minor_allocated) in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | Some ols -> (
      match Analyze.OLS.estimates ols with Some (t :: _) -> Some t | Some [] | None -> None)
    | None -> None
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%14.1f ns/run" t
        | Some [] | None -> "           n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "  (r2=%.3f)" r
        | None -> ""
      in
      Printf.printf "%-42s %s%s\n" name est r2)
    rows;
  (* machine-readable artifact next to the table, so perf regressions can be
     diffed across commits *)
  let module Json = Haec.Obs.Json in
  let num = function Some v -> Json.Num v | None -> Json.Null in
  print_newline ();
  print_endline "Replication soak (E20 harness)";
  print_endline "==============================";
  let soak_rows = soak_json ~quick in
  List.iter
    (fun (name, entry) ->
      match entry with
      | Json.Obj fields ->
        let cell (k, v) =
          match v with Json.Num f -> Printf.sprintf "%s=%.1f" k f | _ -> ""
        in
        Printf.printf "%-44s %s\n" name (String.concat "  " (List.map cell fields))
      | _ -> ())
    soak_rows;
  print_newline ();
  print_endline "Anti-entropy recovery (E21 harness)";
  print_endline "===================================";
  let gossip_rows = gossip_json ~quick in
  List.iter
    (fun (name, entry) ->
      match entry with
      | Json.Obj fields ->
        let cell (k, v) =
          match v with Json.Num f -> Printf.sprintf "%s=%.1f" k f | _ -> ""
        in
        Printf.printf "%-44s %s\n" name (String.concat "  " (List.map cell fields))
      | _ -> ())
    gossip_rows;
  let live_rows =
    if not live then []
    else begin
      print_newline ();
      print_endline "Live cluster saturation (E25 harness, real domains)";
      print_endline "===================================================";
      let rows = live_json ~quick in
      List.iter
        (fun (name, entry) ->
          match entry with
          | Json.Obj fields ->
            let cell (k, v) =
              match v with Json.Num f -> Printf.sprintf "%s=%.1f" k f | _ -> ""
            in
            Printf.printf "%-44s %s\n" name (String.concat "  " (List.map cell fields))
          | _ -> ())
        rows;
      rows
    end
  in
  let doc =
    Json.Obj
      (List.map
         (fun (name, ols) ->
           let r2 = Analyze.OLS.r_square ols in
           ( name,
             Json.Obj
               [
                 ("ns_per_run", num (estimate results name));
                 ("r_square", num r2);
                 ("minor_words_per_run", num (estimate allocs name));
               ] ))
         rows
      @ soak_rows @ gossip_rows @ live_rows)
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_newline ();
  print_endline "results written to BENCH_results.json"

let () =
  let jobs = ref None in
  (* -j N / --jobs N / -jN: worker domains for the experiment seed sweeps
     (tables are bit-identical at any value; see Haec_util.Par) *)
  let rec strip_jobs = function
    | [] -> []
    | ("-j" | "--jobs") :: v :: rest ->
      jobs := int_of_string_opt v;
      strip_jobs rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
      jobs := int_of_string_opt (String.sub a 2 (String.length a - 2));
      strip_jobs rest
    | a :: rest -> a :: strip_jobs rest
  in
  let args = strip_jobs (List.tl (Array.to_list Sys.argv)) in
  (match !jobs with Some j -> Util.Par.set_default_domains j | None -> ());
  let micro_only = List.mem "--micro" args in
  let quick = List.mem "--quick" args in
  let live = List.mem "--live" args in
  let experiment_ids =
    List.filter (fun a -> a <> "--micro" && a <> "--quick" && a <> "--live") args
  in
  let ppf = Format.std_formatter in
  if not micro_only then begin
    print_endline "Experiment tables (paper figures and theorems; see EXPERIMENTS.md)";
    print_endline "===================================================================";
    (match experiment_ids with
    | [] -> Registry.run_all ppf
    | ids ->
      List.iter
        (fun id ->
          match Registry.find id with
          | Some e -> e.Registry.run ppf
          | None -> Format.printf "unknown experiment %S@." id)
        ids);
    Format.pp_print_flush ppf ()
  end;
  if experiment_ids = [] then run_micro ~quick ~live ()
